// Cross-cutting parameterized sweeps: Bloom filter sizing math across
// (n, fpp), leaky bucket rate conformance across rates, the two calibrated
// radio profiles, and subscriptions under churn.
#include <gtest/gtest.h>

#include <tuple>

#include "util/bloom_filter.h"
#include "util/leaky_bucket.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds {
namespace {

// -- Bloom filter (n, fpp) sweep -------------------------------------------------

using BloomParam = std::tuple<std::size_t, double>;

class BloomSizing : public ::testing::TestWithParam<BloomParam> {};

TEST_P(BloomSizing, MeasuredFppNearTarget) {
  const auto [n, fpp] = GetParam();
  util::BloomFilter f = util::BloomFilter::with_capacity(n, fpp, 42);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) f.insert(rng.next_u64());

  int false_positives = 0;
  const int probes = 40000;
  for (int i = 0; i < probes; ++i) {
    if (f.maybe_contains(rng.next_u64())) ++false_positives;
  }
  const double measured = static_cast<double>(false_positives) / probes;
  EXPECT_LT(measured, fpp * 2.5) << "n=" << n << " fpp=" << fpp;
  // The filter should not be wildly oversized either: ~1.44 log2(1/p) bits
  // per element at the optimum.
  const double bits_per_elem =
      static_cast<double>(f.bit_count()) / static_cast<double>(n);
  EXPECT_LT(bits_per_elem, 1.6 * std::log2(1.0 / fpp) + 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BloomSizing,
    ::testing::Values(BloomParam{100, 0.01}, BloomParam{1000, 0.01},
                      BloomParam{10000, 0.01}, BloomParam{1000, 0.001},
                      BloomParam{1000, 0.05}, BloomParam{20000, 0.02}));

// -- Leaky bucket rate conformance ------------------------------------------------

class BucketRates : public ::testing::TestWithParam<double> {};

TEST_P(BucketRates, SustainedThroughputMatchesLeakRate) {
  const double rate_bps = GetParam();
  util::LeakyBucket bucket(30'000, rate_bps);
  const std::size_t message = 1500;
  const int n = 2000;
  SimTime last = SimTime::zero();
  for (int i = 0; i < n; ++i) last = bucket.offer(SimTime::zero(), message);
  const double expected_seconds =
      (static_cast<double>(n) * message - 30'000) * 8.0 / rate_bps;
  EXPECT_NEAR(last.as_seconds() / expected_seconds, 1.0, 0.02)
      << "rate " << rate_bps;
}

INSTANTIATE_TEST_SUITE_P(Rates, BucketRates,
                         ::testing::Values(1e6, 2e6, 4.5e6, 7.2e6, 2e7));

// -- Radio profiles --------------------------------------------------------------

TEST(RadioProfiles, ContendedIsLossierThanCleanForFloods) {
  // The same single-round discovery under both profiles: the contended
  // profile's interference ring must cost recall.
  auto run_profile = [](const sim::RadioConfig& radio) {
    core::PdsConfig pds;
    pds.max_rounds = 1;
    pds.empty_round_retries = 0;
    pds.transport.reliability_enabled = false;
    wl::GridSetup setup;
    setup.nx = setup.ny = 9;
    setup.radio = radio;
    setup.pds = pds;
    wl::Grid grid = wl::make_grid(setup, 17);
    Rng rng(3);
    auto entries =
        wl::make_sample_descriptors(4000, wl::SampleSpace{}, rng);
    auto nodes = grid.scenario->nodes();
    wl::distribute_metadata(nodes, entries, 1, rng, {grid.center});
    double recall = 0.0;
    grid.center_node().discover(
        core::Filter{}, [&](const core::DiscoverySession::Result& r) {
          recall = static_cast<double>(r.distinct_received) / 4000.0;
        });
    grid.scenario->run_until(SimTime::seconds(60));
    return recall;
  };
  const double contended = run_profile(sim::contended_radio_profile());
  const double clean = run_profile(sim::clean_radio_profile());
  EXPECT_LT(contended, clean - 0.1);
  EXPECT_GT(clean, 0.85);
}

TEST(RadioProfiles, CleanProfilePinsInterferenceToDecodeRange) {
  const sim::RadioConfig clean = sim::clean_radio_profile();
  EXPECT_DOUBLE_EQ(clean.interference_range_m, clean.range_m);
  const sim::RadioConfig contended = sim::contended_radio_profile();
  EXPECT_LE(contended.interference_range_m, 0.0);  // default: 1.5 × range
}

// -- Subscriptions under churn -----------------------------------------------------

TEST(SubscriptionSweep, StreamsSurviveStudentCenterChurn) {
  wl::MobilitySetup setup;
  setup.mobility = sim::student_center_params();
  setup.mobility.duration = SimTime::minutes(10);
  setup.pds.subscription_refresh = SimTime::seconds(3.0);
  wl::MobileWorld world = wl::make_mobile_world(setup, 31);
  wl::Scenario& sc = *world.scenario;

  const NodeId subscriber = world.consumers.front();
  // Publisher: a pinned... producers churn, so publish from the subscriber's
  // world: pick an initially present non-consumer node; if it leaves, its
  // later publications simply never exist (we count only published ones).
  NodeId producer = world.initially_present.front();
  if (producer == subscriber) producer = world.initially_present.back();

  std::size_t published = 0;
  std::size_t received = 0;
  sc.node(subscriber)
      .subscribe(core::Filter{}, SimTime::minutes(9),
                 [&](const core::DataDescriptor&) { ++received; });
  for (int i = 0; i < 20; ++i) {
    sc.sim().schedule(SimTime::seconds(10.0 + 20.0 * i), [&, i] {
      if (!sc.medium().is_enabled(producer)) return;  // walked away
      core::DataDescriptor d;
      d.set("tick", std::int64_t{i});
      sc.node(producer).publish_metadata(d);
      ++published;
    });
  }
  sc.run_until(SimTime::minutes(10));
  ASSERT_GT(published, 0u);
  // Most published ticks reach the subscriber despite joins/leaves/moves.
  EXPECT_GE(static_cast<double>(received) / static_cast<double>(published),
            0.7);
}

}  // namespace
}  // namespace pds
