// Failure injection: node departures mid-protocol, harsh channel loss,
// tiny OS buffers, and churn. The paper's core robustness claims are that
// discovery/retrieval degrade gracefully and that opportunistic caching
// preserves availability when producers walk away (§I, §VI-B.2).
#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/generator.h"

namespace pds::wl {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

core::DataDescriptor entry(int seq) {
  core::DataDescriptor d;
  d.set("seq", std::int64_t{seq});
  return d;
}

TEST(FailureInjection, ProducerDepartureAfterDiscoveryPreservesMetadata) {
  // Consumer A discovers; producer leaves; consumer B still discovers the
  // entries from caches along A's reverse path.
  core::PdsConfig pds;
  Scenario sc(1, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);    // consumer A
  sc.add_node(NodeId(1), {10, 0}, pds);   // relay (will cache)
  sc.add_node(NodeId(2), {20, 0}, pds);   // producer
  sc.add_node(NodeId(3), {0, 10}, pds);   // consumer B (adjacent to 0 and 1)
  for (int i = 0; i < 25; ++i) sc.node(NodeId(2)).publish_metadata(entry(i));

  bool a_done = false;
  sc.node(NodeId(0)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result&) {
                                a_done = true;
                              });
  sc.run_until(SimTime::seconds(30));
  ASSERT_TRUE(a_done);

  // Producer walks away with its data.
  sc.medium().set_enabled(NodeId(2), false);

  core::DiscoverySession::Result b_result;
  bool b_done = false;
  sc.node(NodeId(3)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                b_result = r;
                                b_done = true;
                              });
  sc.run_until(SimTime::seconds(60));
  ASSERT_TRUE(b_done);
  EXPECT_EQ(b_result.distinct_received, 25u);
}

TEST(FailureInjection, HolderDepartureMidRetrievalRecoversFromCaches) {
  // Two holders of the same item; one disappears mid-transfer. The stall
  // logic re-plans via the surviving copy.
  core::PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  Scenario sc(2, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.add_node(NodeId(2), {20, 0}, pds);   // holder 1 (2 hops)
  sc.add_node(NodeId(3), {10, 10}, pds);  // holder 2 (adjacent to 0? 14.1m: yes)
  const auto item = make_chunked_item("clip", 8 * 64 * 1024, 64 * 1024);
  for (ChunkIndex c = 0; c < 8; ++c) {
    sc.node(NodeId(2)).publish_chunk(
        item, make_chunk(item, c, 8 * 64 * 1024, 64 * 1024));
    sc.node(NodeId(3)).publish_chunk(
        item, make_chunk(item, c, 8 * 64 * 1024, 64 * 1024));
  }

  core::RetrievalResult result;
  bool done = false;
  sc.node(NodeId(0)).retrieve(item, [&](const core::RetrievalResult& r) {
    result = r;
    done = true;
  });
  // Kill one holder shortly after retrieval starts.
  sc.sim().schedule(SimTime::millis(300),
                    [&] { sc.medium().set_enabled(NodeId(3), false); });
  sc.run_until(SimTime::seconds(300));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
}

TEST(FailureInjection, SoleHolderDepartureFailsPartially) {
  core::PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  pds.max_retrieval_rounds = 4;  // bound the futile retries
  Scenario sc(3, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.add_node(NodeId(2), {20, 0}, pds);
  const auto item = make_chunked_item("clip", 8 * 64 * 1024, 64 * 1024);
  for (ChunkIndex c = 0; c < 8; ++c) {
    sc.node(NodeId(2)).publish_chunk(
        item, make_chunk(item, c, 8 * 64 * 1024, 64 * 1024));
  }

  core::RetrievalResult result;
  bool done = false;
  sc.node(NodeId(0)).retrieve(item, [&](const core::RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc.sim().schedule(SimTime::millis(900),
                    [&] { sc.medium().set_enabled(NodeId(2), false); });
  sc.run_until(SimTime::seconds(600));
  ASSERT_TRUE(done);
  // Whatever made it across (plus relay caches) is reported faithfully;
  // the session must not claim completeness.
  if (result.chunks_received < 8) {
    EXPECT_FALSE(result.complete);
  }
  EXPECT_LE(result.chunks_received, 8u);
}

TEST(FailureInjection, HeavyChannelLossStillReachesHighRecall) {
  PddGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.metadata_count = 500;
  p.seed = 11;
  p.pds.max_rounds = 12;
  // The contended profile plus an extra-harsh noise floor.
  const PddOutcome out = [&p] {
    PddGridParams q = p;
    return run_pdd_grid(q);
  }();
  EXPECT_GE(out.recall, 0.95);
}

TEST(FailureInjection, TinyOsBufferIsSurvivable) {
  // With a 32 KB OS buffer, bursts overflow; pacing plus retransmission
  // still deliver discovery.
  core::PdsConfig pds;
  sim::RadioConfig radio = lossless_radio();
  radio.os_buffer_bytes = 32 * 1024;
  Scenario sc(4, radio);
  for (std::uint32_t i = 0; i < 4; ++i) {
    sc.add_node(NodeId(i), {static_cast<double>(i) * 10.0, 0.0}, pds);
  }
  for (int i = 0; i < 300; ++i) {
    sc.node(NodeId(3)).publish_metadata(entry(i));
  }
  core::DiscoverySession::Result result;
  bool done = false;
  sc.node(NodeId(0)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                result = r;
                                done = true;
                              });
  sc.run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_GE(static_cast<double>(result.distinct_received) / 300.0, 0.95);
}

TEST(FailureInjection, ChurnDuringDiscoveryDegradesGracefully) {
  PddMobilityParams p;
  p.mobility = sim::student_center_params();
  p.mobility.frequency_multiplier = 3.0;  // harsher than the paper's ×2
  p.mobility.duration = SimTime::minutes(5);
  p.metadata_count = 1000;
  p.seed = 13;
  const PddOutcome out = run_pdd_mobility(p);
  // Data on departed nodes may be unreachable, but the bulk must arrive.
  EXPECT_GE(out.recall, 0.80);
}

TEST(FailureInjection, ConsumerIsolationTerminates) {
  // A consumer with no neighbors at all must terminate its session rather
  // than hang.
  core::PdsConfig pds;
  pds.empty_round_retries = 1;
  Scenario sc(5, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {500, 0}, pds);  // unreachable
  sc.node(NodeId(1)).publish_metadata(entry(1));

  core::DiscoverySession::Result result;
  bool done = false;
  sc.node(NodeId(0)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                result = r;
                                done = true;
                              });
  sc.run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.distinct_received, 0u);
}

}  // namespace
}  // namespace pds::wl
