// Failure injection, driven by deterministic fault schedules (sim/faults.h):
// node crashes mid-discovery-round, provider crashes during PDR phase 2,
// partitions that heal mid-retrieval, harsh channel loss, tiny OS buffers
// and churn. The paper's core robustness claims are that discovery and
// retrieval degrade gracefully and that opportunistic caching preserves
// availability when producers walk away (§I, §VI-B.2); DESIGN.md §11 adds
// the engineered recovery paths these tests pin down: transport give-up →
// lingering-query purge, CDI invalidation and immediate re-dispatch.
#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/generator.h"

namespace pds::wl {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

core::DataDescriptor entry(int seq) {
  core::DataDescriptor d;
  d.set("seq", std::int64_t{seq});
  return d;
}

// "No stuck lingering queries": once every query's lifetime has passed with
// the network idle, a sweep must leave every LQT empty — a crash, partition
// or purge must never strand an entry that survives expiry.
void expect_no_stuck_queries(Scenario& sc) {
  const SimTime now = sc.sim().now();
  for (core::PdsNode* node : sc.nodes()) {
    node->lqt().sweep(now);
    EXPECT_EQ(node->lqt().size(), 0u)
        << "node " << node->id() << " has stuck lingering queries";
  }
}

TEST(FailureInjection, CrashDuringPddRoundRecovers) {
  // A relay crashes mid-round (losing its LQT and caches) and reboots a few
  // seconds later; multi-round discovery still reaches every entry because
  // redundant paths route around the hole and the purge logic keeps dead
  // state from lingering.
  core::PdsConfig pds;
  Scenario sc(7, lossless_radio());
  // 3x3 grid, spacing 10 (every node reaches its 8-neighbors at range 15).
  for (std::uint32_t row = 0; row < 3; ++row) {
    for (std::uint32_t col = 0; col < 3; ++col) {
      sc.add_node(NodeId(row * 3 + col),
                  {static_cast<double>(col) * 10.0,
                   static_cast<double>(row) * 10.0},
                  pds);
    }
  }
  // Entries live on the two far corners (ids 6 and 8); both are two hops
  // from the consumer at id 0.
  for (int i = 0; i < 40; ++i) {
    sc.node(NodeId(6)).publish_metadata(entry(i));
    sc.node(NodeId(8)).publish_metadata(entry(40 + i));
  }

  sim::FaultSchedule faults;
  faults.crash(SimTime::millis(400), NodeId(4), /*wipe=*/true)
      .restart(SimTime::seconds(5), NodeId(4));
  sc.install_faults(faults);

  core::DiscoverySession::Result result;
  bool done = false;
  sc.node(NodeId(0)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                result = r;
                                done = true;
                              });
  sc.run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.distinct_received, 80u);
  EXPECT_EQ(sc.fault_injector()->stats().crashes, 1u);
  EXPECT_EQ(sc.fault_injector()->stats().restarts, 1u);
  expect_no_stuck_queries(sc);
}

TEST(FailureInjection, ProviderCrashDuringPdrPhase2Redispatches) {
  // Two holders of the same item; the one the consumer's phase-2 plan may
  // lean on crashes permanently mid-transfer. The transport's give-up signal
  // invalidates CDI routes through the dead provider and re-dispatches the
  // missing chunks toward the survivor — no stall-timeout wait, no hang.
  core::PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  Scenario sc(2, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.add_node(NodeId(2), {20, 0}, pds);   // holder 1 (2 hops)
  sc.add_node(NodeId(3), {10, 10}, pds);  // holder 2 (adjacent at 14.1 m)
  const auto item = make_chunked_item("clip", 8 * 64 * 1024, 64 * 1024);
  for (ChunkIndex c = 0; c < 8; ++c) {
    sc.node(NodeId(2)).publish_chunk(
        item, make_chunk(item, c, 8 * 64 * 1024, 64 * 1024));
    sc.node(NodeId(3)).publish_chunk(
        item, make_chunk(item, c, 8 * 64 * 1024, 64 * 1024));
  }

  sim::FaultSchedule faults;
  faults.crash(SimTime::millis(300), NodeId(3));  // permanent
  sc.install_faults(faults);

  core::RetrievalResult result;
  bool done = false;
  sc.node(NodeId(0)).retrieve(item, [&](const core::RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc.run_until(SimTime::seconds(300));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.chunks_received, 8u);
  // The dead provider must be gone from the consumer's routing state: the
  // unreachable purge removed it, and nothing re-learned a route since.
  EXPECT_EQ(sc.node(NodeId(0)).cdi_table().routes_via(NodeId(3),
                                                      sc.sim().now()),
            0u);
  expect_no_stuck_queries(sc);
}

TEST(FailureInjection, PartitionHealMidRetrievalCompletes) {
  // The sole holder is cut off by a network partition right after phase 2
  // starts, and the cut heals twenty seconds later. The session must ride
  // out the outage (re-dispatch budget, stall timer) and finish after the
  // heal instead of hanging or giving up.
  core::PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  Scenario sc(3, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.add_node(NodeId(2), {20, 0}, pds);  // sole holder
  const auto item = make_chunked_item("clip", 8 * 64 * 1024, 64 * 1024);
  for (ChunkIndex c = 0; c < 8; ++c) {
    sc.node(NodeId(2)).publish_chunk(
        item, make_chunk(item, c, 8 * 64 * 1024, 64 * 1024));
  }

  sim::FaultSchedule faults;
  faults.partition(SimTime::millis(900), SimTime::seconds(20),
                   {NodeId(0), NodeId(1)}, {NodeId(2)});
  sc.install_faults(faults);

  core::RetrievalResult result;
  bool done = false;
  sc.node(NodeId(0)).retrieve(item, [&](const core::RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc.run_until(SimTime::seconds(300));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.chunks_received, 8u);
  EXPECT_EQ(sc.fault_injector()->stats().partitions, 1u);
  EXPECT_EQ(sc.fault_injector()->stats().heals, 1u);
  EXPECT_EQ(sc.medium().pair_loss_count(), 0u);
  expect_no_stuck_queries(sc);
}

TEST(FailureInjection, ProducerDepartureAfterDiscoveryPreservesMetadata) {
  // Consumer A discovers; the producer churns away; consumer B still
  // discovers the entries from caches along A's reverse path.
  core::PdsConfig pds;
  Scenario sc(1, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);    // consumer A
  sc.add_node(NodeId(1), {10, 0}, pds);   // relay (will cache)
  sc.add_node(NodeId(2), {20, 0}, pds);   // producer
  sc.add_node(NodeId(3), {0, 10}, pds);   // consumer B (adjacent to 0 and 1)
  for (int i = 0; i < 25; ++i) sc.node(NodeId(2)).publish_metadata(entry(i));

  sim::FaultSchedule faults;
  faults.crash(SimTime::seconds(30), NodeId(2));  // walks away with its data
  sc.install_faults(faults);

  bool a_done = false;
  sc.node(NodeId(0)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result&) {
                                a_done = true;
                              });
  sc.run_until(SimTime::seconds(30));
  ASSERT_TRUE(a_done);

  core::DiscoverySession::Result b_result;
  bool b_done = false;
  sc.node(NodeId(3)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                b_result = r;
                                b_done = true;
                              });
  sc.run_until(SimTime::seconds(60));
  ASSERT_TRUE(b_done);
  EXPECT_EQ(b_result.distinct_received, 25u);
}

TEST(FailureInjection, SoleHolderDepartureFailsPartially) {
  core::PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  pds.max_retrieval_rounds = 4;  // bound the futile retries
  Scenario sc(3, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.add_node(NodeId(2), {20, 0}, pds);
  const auto item = make_chunked_item("clip", 8 * 64 * 1024, 64 * 1024);
  for (ChunkIndex c = 0; c < 8; ++c) {
    sc.node(NodeId(2)).publish_chunk(
        item, make_chunk(item, c, 8 * 64 * 1024, 64 * 1024));
  }

  sim::FaultSchedule faults;
  faults.crash(SimTime::millis(900), NodeId(2));  // permanent
  sc.install_faults(faults);

  core::RetrievalResult result;
  bool done = false;
  sc.node(NodeId(0)).retrieve(item, [&](const core::RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc.run_until(SimTime::seconds(600));
  ASSERT_TRUE(done);
  // Whatever made it across (plus relay caches) is reported faithfully;
  // the session must not claim completeness.
  if (result.chunks_received < 8) {
    EXPECT_FALSE(result.complete);
  }
  EXPECT_LE(result.chunks_received, 8u);
  expect_no_stuck_queries(sc);
}

TEST(FailureInjection, HeavyChannelLossStillReachesHighRecall) {
  PddGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.metadata_count = 500;
  p.seed = 11;
  p.pds.max_rounds = 12;
  // The contended profile plus an extra-harsh noise floor.
  const PddOutcome out = [&p] {
    PddGridParams q = p;
    return run_pdd_grid(q);
  }();
  EXPECT_GE(out.recall, 0.95);
}

TEST(FailureInjection, BurstLossChannelsStillReachFullRecall) {
  // Gilbert–Elliott deep fades on a band of relays, on top of the grid's
  // i.i.d. noise: retransmission plus multi-round discovery ride out the
  // bursts.
  PddGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.metadata_count = 500;
  p.redundancy = 2;
  p.seed = 17;
  for (std::uint32_t i = 0; i < 5; ++i) {
    p.faults.burst(SimTime::zero(), SimTime::seconds(120), NodeId(i * 5 + i));
  }
  const PddOutcome out = run_pdd_grid(p);
  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.9);
}

TEST(FailureInjection, BufferStormDuringDiscoveryIsSurvivable) {
  // Foreign junk traffic floods two relays' OS buffers as the query goes
  // out; pacing plus retransmission still deliver discovery.
  PddGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.metadata_count = 500;
  p.redundancy = 2;
  p.seed = 19;
  p.faults.buffer_storm(SimTime::millis(100), NodeId(2))
      .buffer_storm(SimTime::millis(100), NodeId(10));
  const PddOutcome out = run_pdd_grid(p);
  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.95);
}

TEST(FailureInjection, TinyOsBufferIsSurvivable) {
  // With a 32 KB OS buffer, bursts overflow; pacing plus retransmission
  // still deliver discovery.
  core::PdsConfig pds;
  sim::RadioConfig radio = lossless_radio();
  radio.os_buffer_bytes = 32 * 1024;
  Scenario sc(4, radio);
  for (std::uint32_t i = 0; i < 4; ++i) {
    sc.add_node(NodeId(i), {static_cast<double>(i) * 10.0, 0.0}, pds);
  }
  for (int i = 0; i < 300; ++i) {
    sc.node(NodeId(3)).publish_metadata(entry(i));
  }
  core::DiscoverySession::Result result;
  bool done = false;
  sc.node(NodeId(0)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                result = r;
                                done = true;
                              });
  sc.run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_GE(static_cast<double>(result.distinct_received) / 300.0, 0.95);
}

TEST(FailureInjection, ChurnDuringDiscoveryDegradesGracefully) {
  PddMobilityParams p;
  p.mobility = sim::student_center_params();
  p.mobility.frequency_multiplier = 3.0;  // harsher than the paper's ×2
  p.mobility.duration = SimTime::minutes(5);
  p.metadata_count = 1000;
  p.seed = 13;
  const PddOutcome out = run_pdd_mobility(p);
  // Data on departed nodes may be unreachable, but the bulk must arrive.
  EXPECT_GE(out.recall, 0.80);
}

TEST(FailureInjection, ScheduledChurnDuringGridDiscoveryRecovers) {
  // Scripted churn (crash without wipe, rejoin later) on producers of a
  // redundancy-2 grid: later rounds re-find whatever the departures hid.
  PddGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.metadata_count = 500;
  p.redundancy = 2;
  p.consumers = 2;
  p.sequential = true;
  p.seed = 23;
  p.faults.churn(SimTime::millis(500), SimTime::seconds(10), NodeId(0))
      .churn(SimTime::millis(700), SimTime::seconds(12), NodeId(4))
      .churn(SimTime::millis(900), SimTime::seconds(14), NodeId(20));
  const PddOutcome out = run_pdd_grid(p);
  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.9);
}

TEST(FailureInjection, ConsumerIsolationTerminates) {
  // A consumer with no neighbors at all must terminate its session rather
  // than hang.
  core::PdsConfig pds;
  pds.empty_round_retries = 1;
  Scenario sc(5, lossless_radio());
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {500, 0}, pds);  // unreachable
  sc.node(NodeId(1)).publish_metadata(entry(1));

  core::DiscoverySession::Result result;
  bool done = false;
  sc.node(NodeId(0)).discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                result = r;
                                done = true;
                              });
  sc.run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.distinct_received, 0u);
}

}  // namespace
}  // namespace pds::wl
