// Unit tests for the discrete-event simulator, radio medium, topology and
// mobility models.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "net/message.h"
#include "sim/event_queue.h"
#include "sim/mobility.h"
#include "sim/radio.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace pds::sim {
namespace {

// -- EventQueue ---------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(2.0), [&] { order.push_back(2); });
  q.push(SimTime::seconds(1.0), [&] { order.push_back(1); });
  q.push(SimTime::seconds(3.0), [&] { order.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::seconds(1.0), [&, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.push(SimTime::seconds(1.0), [&] { fired = true; });
  q.push(SimTime::seconds(2.0), [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireAndDoubleCancelAreNoOps) {
  EventQueue q;
  const auto first = q.push(SimTime::seconds(1.0), [] {});
  const auto second = q.push(SimTime::seconds(2.0), [] {});
  q.pop().action();  // fires `first`
  q.cancel(first);   // already fired: must not disturb accounting
  EXPECT_EQ(q.size(), 1u);
  q.cancel(second);
  q.cancel(second);  // double cancel
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelledHeadDoesNotBlockNextTime) {
  EventQueue q;
  const auto head = q.push(SimTime::seconds(1.0), [] {});
  q.push(SimTime::seconds(2.0), [] {});
  q.cancel(head);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2.0));
  EXPECT_EQ(q.pop().at, SimTime::seconds(2.0));
  EXPECT_TRUE(q.empty());
}

// -- Simulator ---------------------------------------------------------------

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim(1);
  SimTime seen = SimTime::zero();
  sim.schedule(SimTime::seconds(1.5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::seconds(1.5));
  EXPECT_EQ(sim.now(), SimTime::seconds(1.5));
}

TEST(Simulator, NestedSchedulingRelativeToFireTime) {
  Simulator sim(1);
  SimTime second = SimTime::zero();
  sim.schedule(SimTime::seconds(1.0), [&] {
    sim.schedule(SimTime::seconds(2.0), [&] { second = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second, SimTime::seconds(3.0));
}

TEST(Simulator, HorizonStopsExecution) {
  Simulator sim(1);
  bool late_fired = false;
  sim.schedule(SimTime::seconds(10.0), [&] { late_fired = true; });
  sim.run(SimTime::seconds(5.0));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
  // Continuing past the horizon fires the event.
  sim.run(SimTime::seconds(20.0));
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, StopHaltsImmediately) {
  Simulator sim(1);
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::seconds(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
}

// -- Topology -----------------------------------------------------------------

TEST(Topology, GridPositionsRowMajor) {
  const auto pos = grid_positions(3, 2, 10.0);
  ASSERT_EQ(pos.size(), 6u);
  EXPECT_EQ(pos[0], (Vec2{0, 0}));
  EXPECT_EQ(pos[1], (Vec2{10, 0}));
  EXPECT_EQ(pos[3], (Vec2{0, 10}));
  EXPECT_EQ(pos[5], (Vec2{20, 10}));
}

TEST(Topology, SpacingGivesEightNeighbors) {
  const double range = 15.0;
  const double s = grid_spacing_for_range(range);
  // Diagonal neighbor in range, 2-hop neighbor out of range.
  EXPECT_LE(s * std::sqrt(2.0), range);
  EXPECT_GT(2.0 * s, range);
}

TEST(Topology, CenterIndex) {
  EXPECT_EQ(grid_center_index(10, 10), 55u);
  EXPECT_EQ(grid_center_index(3, 3), 4u);
  EXPECT_EQ(grid_center_index(1, 1), 0u);
}

// -- RadioMedium ----------------------------------------------------------------

class Collector final : public FrameSink {
 public:
  void on_frame(const Frame& frame) override { frames.push_back(frame); }
  std::vector<Frame> frames;
};

struct Blob final : FramePayload {
  int id = 0;
};

Frame make_frame(NodeId sender, std::size_t bytes, int id = 0) {
  auto blob = std::make_shared<Blob>();
  blob->id = id;
  return Frame{.sender = sender, .size_bytes = bytes, .payload = blob};
}

TEST(RadioMedium, DeliversToAllInRange) {
  Simulator sim(1);
  RadioConfig cfg;
  cfg.loss_probability = 0.0;
  RadioMedium medium(sim, cfg);
  Collector a, b, c;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});
  medium.add_node(NodeId(2), c, {100, 0});  // out of range

  medium.send(NodeId(0), make_frame(NodeId(0), 1000));
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);  // broadcast: in-range receiver hears it
  EXPECT_TRUE(c.frames.empty());
  EXPECT_TRUE(a.frames.empty());  // no self-delivery
}

TEST(RadioMedium, OsBufferOverflowDropsSilently) {
  Simulator sim(1);
  RadioConfig cfg;
  cfg.os_buffer_bytes = 5000;
  cfg.loss_probability = 0.0;
  RadioMedium medium(sim, cfg);
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});

  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (medium.send(NodeId(0), make_frame(NodeId(0), 1000, i))) ++accepted;
  }
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(medium.stats().os_buffer_drops, 5u);
  sim.run();
  EXPECT_EQ(b.frames.size(), 5u);
}

TEST(RadioMedium, RandomLossDropsApproximatelyAtConfiguredRate) {
  Simulator sim(2);
  RadioConfig cfg;
  cfg.loss_probability = 0.2;
  cfg.os_buffer_bytes = 100'000'000;
  RadioMedium medium(sim, cfg);
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    medium.send(NodeId(0), make_frame(NodeId(0), 500, i));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(b.frames.size()) / n, 0.8, 0.03);
}

TEST(RadioMedium, CarrierSenseSerializesNeighbors) {
  // Two in-range senders saturating: collisions should be essentially
  // absent because each defers to the other.
  Simulator sim(3);
  RadioConfig cfg;
  cfg.loss_probability = 0.0;
  RadioMedium medium(sim, cfg);
  Collector a, b, c;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});
  medium.add_node(NodeId(2), c, {5, 5});
  for (int i = 0; i < 200; ++i) {
    medium.send(NodeId(0), make_frame(NodeId(0), 1000, i));
    medium.send(NodeId(1), make_frame(NodeId(1), 1000, 1000 + i));
  }
  sim.run();
  const auto& st = medium.stats();
  EXPECT_LT(st.losses_collision, st.deliveries / 20);
}

TEST(RadioMedium, HiddenTerminalsCollideAtMiddleReceiver) {
  // Senders 80 m apart (out of carrier-sense range), receiver midway hears
  // both: concurrent saturating streams must corrupt heavily at the middle
  // (equal distances defeat capture).
  Simulator sim(4);
  RadioConfig cfg;
  cfg.range_m = 50.0;
  cfg.carrier_sense_range_m = 60.0;
  cfg.interference_range_m = 50.0;
  cfg.loss_probability = 0.0;
  cfg.os_buffer_bytes = 100'000'000;
  RadioMedium medium(sim, cfg);
  Collector left, right, middle;
  medium.add_node(NodeId(0), left, {0, 0});
  medium.add_node(NodeId(1), right, {80, 0});
  medium.add_node(NodeId(2), middle, {40, 0});
  for (int i = 0; i < 500; ++i) {
    medium.send(NodeId(0), make_frame(NodeId(0), 1500, i));
    medium.send(NodeId(1), make_frame(NodeId(1), 1500, 1000 + i));
  }
  sim.run();
  EXPECT_GT(medium.stats().losses_collision, 400u);
}

TEST(RadioMedium, CaptureLetsCloserSenderWin) {
  // Receiver 10 m from sender A; interferer B 40 m away and hidden from A:
  // A's frames survive via capture.
  Simulator sim(5);
  RadioConfig cfg;
  cfg.range_m = 45.0;
  cfg.carrier_sense_range_m = 46.0;
  cfg.interference_range_m = 45.0;
  cfg.loss_probability = 0.0;
  cfg.capture_ratio = 0.6;
  cfg.os_buffer_bytes = 100'000'000;
  RadioMedium medium(sim, cfg);
  Collector a, b, rx;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {50, 0});  // 50m from A: hidden
  medium.add_node(NodeId(2), rx, {10, 0});  // 10m from A, 40m from B
  for (int i = 0; i < 300; ++i) {
    medium.send(NodeId(0), make_frame(NodeId(0), 1500, i));
    medium.send(NodeId(1), make_frame(NodeId(1), 1500, 1000 + i));
  }
  sim.run();
  // rx should receive nearly all of A's 300 frames (and lose most of B's).
  int from_a = 0;
  for (const Frame& f : rx.frames) {
    if (f.sender == NodeId(0)) ++from_a;
  }
  EXPECT_GT(from_a, 280);
}

TEST(RadioMedium, DisabledNodeNeitherSendsNorReceives) {
  Simulator sim(6);
  RadioConfig cfg;
  cfg.loss_probability = 0.0;
  RadioMedium medium(sim, cfg);
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0}, /*enabled=*/false);

  medium.send(NodeId(0), make_frame(NodeId(0), 100));
  EXPECT_FALSE(medium.send(NodeId(1), make_frame(NodeId(1), 100)));
  sim.run();
  EXPECT_TRUE(b.frames.empty());

  medium.set_enabled(NodeId(1), true);
  medium.send(NodeId(0), make_frame(NodeId(0), 100));
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST(RadioMedium, MobilityChangesConnectivity) {
  Simulator sim(7);
  RadioConfig cfg;
  cfg.loss_probability = 0.0;
  RadioMedium medium(sim, cfg);
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {100, 0});
  EXPECT_TRUE(medium.neighbors(NodeId(0)).empty());

  medium.set_position(NodeId(1), {10, 0});
  EXPECT_EQ(medium.neighbors(NodeId(0)).size(), 1u);
  medium.send(NodeId(0), make_frame(NodeId(0), 100));
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST(RadioMedium, ControlFramesJumpQueue) {
  Simulator sim(8);
  RadioConfig cfg;
  cfg.loss_probability = 0.0;
  RadioMedium medium(sim, cfg);
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});

  std::vector<int> order;
  medium.set_tx_observer([&](NodeId, const Frame& f) {
    order.push_back(std::static_pointer_cast<const Blob>(f.payload)->id);
  });
  // Three data frames then a control frame: control should transmit before
  // the queued data (but after any frame already on the air).
  for (int i = 0; i < 3; ++i) {
    medium.send(NodeId(0), make_frame(NodeId(0), 10000, i));
  }
  Frame ctl = make_frame(NodeId(0), 50, 99);
  ctl.control = true;
  medium.send(NodeId(0), ctl);
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  // The control frame overtakes all queued data (it transmits first or, if
  // a data frame was already on the air, immediately after it).
  EXPECT_TRUE(order[0] == 99 || order[1] == 99);
}

// -- Mobility ---------------------------------------------------------------

TEST(Mobility, PresetsMatchPaperObservations) {
  const MobilityParams sc = student_center_params();
  EXPECT_DOUBLE_EQ(sc.area_width_m, 120.0);
  EXPECT_EQ(sc.population, 20u);
  EXPECT_DOUBLE_EQ(sc.moves_per_minute, 4.0);
  const MobilityParams cl = classroom_params();
  EXPECT_DOUBLE_EQ(cl.area_width_m, 20.0);
  EXPECT_EQ(cl.population, 30u);
  EXPECT_DOUBLE_EQ(cl.joins_per_minute, 0.5);
}

std::vector<NodeId> make_pool(std::size_t n) {
  std::vector<NodeId> pool;
  for (std::size_t i = 0; i < n; ++i) {
    pool.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  return pool;
}

TEST(Mobility, InitialPlacementRespectsPopulationAndPinned) {
  Rng rng(1);
  MobilityParams params = student_center_params();
  const auto pool = make_pool(40);
  const std::vector<NodeId> pinned{NodeId(0), NodeId(1)};
  const MobilityTrace trace =
      MobilityTrace::generate(params, pool, pinned, rng);

  std::size_t present = 0;
  for (const InitialPlacement& p : trace.initial()) {
    if (p.present) ++present;
    EXPECT_GE(p.pos.x, 0.0);
    EXPECT_LE(p.pos.x, params.area_width_m);
  }
  EXPECT_EQ(present, params.population);
  for (NodeId pin : pinned) {
    const auto it = std::find_if(
        trace.initial().begin(), trace.initial().end(),
        [pin](const InitialPlacement& p) { return p.node == pin; });
    ASSERT_NE(it, trace.initial().end());
    EXPECT_TRUE(it->present);
  }
}

TEST(Mobility, PinnedNodesNeverLeave) {
  Rng rng(2);
  MobilityParams params = student_center_params();
  params.duration = SimTime::minutes(30);
  params.frequency_multiplier = 2.0;
  const auto pool = make_pool(60);
  const std::vector<NodeId> pinned{NodeId(5)};
  const MobilityTrace trace =
      MobilityTrace::generate(params, pool, pinned, rng);
  for (const MobilityEvent& ev : trace.events()) {
    if (ev.kind == MobilityEvent::Kind::kLeave) {
      EXPECT_NE(ev.node, NodeId(5));
    }
  }
}

TEST(Mobility, EventRatesScaleWithParameters) {
  Rng rng(3);
  MobilityParams params = student_center_params();
  params.duration = SimTime::minutes(60);
  const auto pool = make_pool(80);
  const MobilityTrace trace = MobilityTrace::generate(params, pool, {}, rng);

  std::size_t moves = 0;
  for (const auto& ev : trace.events()) {
    if (ev.kind == MobilityEvent::Kind::kMove) ++moves;
  }
  // 4 moves/minute over 60 minutes ≈ 240.
  EXPECT_NEAR(static_cast<double>(moves), 240.0, 60.0);
}

TEST(Mobility, EventsAreTimeOrderedAndConsistent) {
  Rng rng(4);
  MobilityParams params = classroom_params();
  params.duration = SimTime::minutes(20);
  const auto pool = make_pool(50);
  const MobilityTrace trace = MobilityTrace::generate(params, pool, {}, rng);

  // Replay presence and check kJoin only for absent, kLeave only for
  // present nodes.
  std::unordered_set<NodeId> present;
  for (const auto& p : trace.initial()) {
    if (p.present) present.insert(p.node);
  }
  SimTime prev = SimTime::zero();
  for (const auto& ev : trace.events()) {
    EXPECT_GE(ev.at, prev);
    prev = ev.at;
    switch (ev.kind) {
      case MobilityEvent::Kind::kJoin:
        EXPECT_FALSE(present.contains(ev.node));
        present.insert(ev.node);
        break;
      case MobilityEvent::Kind::kLeave:
        EXPECT_TRUE(present.contains(ev.node));
        present.erase(ev.node);
        break;
      case MobilityEvent::Kind::kMove:
        EXPECT_TRUE(present.contains(ev.node));
        break;
    }
  }
}

TEST(Mobility, InstallDrivesMedium) {
  Simulator sim(5);
  RadioConfig cfg;
  RadioMedium medium(sim, cfg);
  Collector sink;
  medium.add_node(NodeId(0), sink, {0, 0}, true);
  medium.add_node(NodeId(1), sink, {5, 5}, false);

  MobilityTrace trace;
  // Hand-build a trace through the public API: generate with rates 0 and
  // verify via install of a synthetic one is not possible, so use generate
  // with a leave-heavy configuration instead.
  MobilityParams params;
  params.population = 2;
  params.joins_per_minute = 0.0;
  params.moves_per_minute = 0.0;
  params.leaves_per_minute = 30.0;
  params.duration = SimTime::minutes(2);
  Rng rng(6);
  const auto pool = make_pool(2);
  const MobilityTrace t = MobilityTrace::generate(params, pool, {}, rng);
  ASSERT_FALSE(t.events().empty());
  t.install(sim, medium);
  sim.run();
  // With only leaves, at least one node ended disabled.
  EXPECT_TRUE(!medium.is_enabled(NodeId(0)) || !medium.is_enabled(NodeId(1)));
}

}  // namespace
}  // namespace pds::sim
