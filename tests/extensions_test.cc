// Tests for the §VII extension features: flood-control schemes, the bounded
// chunk cache with LRU/LFU eviction, energy accounting, the Wi-Fi Direct
// multi-group topology, and mobility-trace serialization.
#include <gtest/gtest.h>

#include <set>

#include "sim/topology.h"
#include "workload/experiment.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds {
namespace {

// -- Flood control --------------------------------------------------------------

TEST(FloodControl, CounterBasedSuppressionCutsQueryTransmissions) {
  // On a dense grid most relays hear several duplicate copies of a flooded
  // query before their own assessment delay fires; suppression should cut
  // query transmissions substantially without hurting recall much.
  // Single round isolates the per-flood saving (with multi-round, a lower
  // first-round recall simply buys extra rounds of flooding).
  auto run_with = [](bool suppress) {
    wl::PddGridParams p;
    p.nx = p.ny = 7;
    p.metadata_count = 1000;
    p.seed = 5;
    p.pds.max_rounds = 1;
    p.pds.empty_round_retries = 0;
    if (suppress) {
      p.pds.flood_assessment_delay = SimTime::millis(30);
      p.pds.flood_copy_threshold = 2;
    }
    return p;
  };

  std::uint64_t queries_plain = 0;
  std::uint64_t queries_suppressed = 0;
  double recall_suppressed = 0.0;
  for (const bool suppress : {false, true}) {
    wl::PddGridParams p = run_with(suppress);
    wl::GridSetup setup;
    setup.nx = p.nx;
    setup.ny = p.ny;
    setup.pds = p.pds;
    wl::Grid grid = wl::make_grid(setup, p.seed);
    Rng rng(1);
    auto entries =
        wl::make_sample_descriptors(p.metadata_count, wl::SampleSpace{}, rng);
    auto nodes = grid.scenario->nodes();
    wl::distribute_metadata(nodes, entries, 1, rng, {grid.center});

    std::uint64_t queries = 0;
    grid.scenario->medium().set_tx_observer(
        [&](NodeId, const sim::Frame& f) {
          const auto msg =
              std::dynamic_pointer_cast<const net::Message>(f.payload);
          if (msg != nullptr && msg->is_query()) ++queries;
        });
    double recall = 0.0;
    grid.center_node().discover(
        core::Filter{}, [&](const core::DiscoverySession::Result& r) {
          recall = static_cast<double>(r.distinct_received) / 1000.0;
        });
    grid.scenario->run_until(SimTime::seconds(120));
    if (suppress) {
      queries_suppressed = queries;
      recall_suppressed = recall;
    } else {
      queries_plain = queries;
    }
  }
  // Threshold 2 on an 8-neighbor grid silences ~20% of relays; the exact
  // saving depends on per-seed timing, so require a clear reduction.
  EXPECT_LT(queries_suppressed, queries_plain - 4);
  EXPECT_GE(recall_suppressed, 0.6);  // single round, partial by design
}

TEST(FloodControl, ProbabilisticForwardingCutsQueryTransmissionsToo) {
  wl::PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 500;
  p.seed = 6;
  p.pds.flood_forward_probability = 0.6;
  const wl::PddOutcome out = wl::run_pdd_grid(p);
  // Gossip at p=0.6 on a dense grid still percolates; multi-round recovers
  // the stragglers.
  EXPECT_GE(out.recall, 0.9);
}

// -- Bounded chunk cache --------------------------------------------------------

core::DataDescriptor cache_item(const char* name, std::size_t chunks) {
  return wl::make_chunked_item(name, chunks * 1000, 1000);
}

TEST(ChunkCache, EvictsLruBeyondLimit) {
  core::DataStore store;
  store.set_chunk_cache_limit(3000, core::ChunkEvictionPolicy::kLru,
                              SimTime::minutes(10));
  const auto item = cache_item("a", 5);
  for (ChunkIndex c = 0; c < 5; ++c) {
    store.insert_chunk(item, c,
                       net::ChunkPayload{.index = c, .size_bytes = 1000,
                                         .content_hash = c},
                       SimTime::seconds(c));
  }
  // Capacity 3 chunks: 0 and 1 evicted.
  EXPECT_EQ(store.cached_chunk_bytes(), 3000u);
  EXPECT_FALSE(store.has_chunk(item.item_id(), 0));
  EXPECT_FALSE(store.has_chunk(item.item_id(), 1));
  EXPECT_TRUE(store.has_chunk(item.item_id(), 4));
}

TEST(ChunkCache, AccessRefreshesLruRecency) {
  core::DataStore store;
  store.set_chunk_cache_limit(2000, core::ChunkEvictionPolicy::kLru,
                              SimTime::minutes(10));
  const auto item = cache_item("a", 3);
  store.insert_chunk(item, 0,
                     net::ChunkPayload{.index = 0, .size_bytes = 1000},
                     SimTime::zero());
  store.insert_chunk(item, 1,
                     net::ChunkPayload{.index = 1, .size_bytes = 1000},
                     SimTime::zero());
  (void)store.chunk(item.item_id(), 0);  // chunk 0 becomes most recent
  store.insert_chunk(item, 2,
                     net::ChunkPayload{.index = 2, .size_bytes = 1000},
                     SimTime::zero());
  EXPECT_TRUE(store.has_chunk(item.item_id(), 0));
  EXPECT_FALSE(store.has_chunk(item.item_id(), 1));  // LRU victim
}

TEST(ChunkCache, LfuPrefersPopularChunks) {
  core::DataStore store;
  store.set_chunk_cache_limit(2000, core::ChunkEvictionPolicy::kLfu,
                              SimTime::minutes(10));
  const auto item = cache_item("a", 3);
  store.insert_chunk(item, 0,
                     net::ChunkPayload{.index = 0, .size_bytes = 1000},
                     SimTime::zero());
  store.insert_chunk(item, 1,
                     net::ChunkPayload{.index = 1, .size_bytes = 1000},
                     SimTime::zero());
  for (int i = 0; i < 5; ++i) (void)store.chunk(item.item_id(), 0);
  (void)store.chunk(item.item_id(), 1);
  store.insert_chunk(item, 2,
                     net::ChunkPayload{.index = 2, .size_bytes = 1000},
                     SimTime::zero());
  // LFU denies admission to the unproven newcomer: both accessed chunks
  // stay, the fresh chunk 2 is the least-frequently-used victim.
  EXPECT_TRUE(store.has_chunk(item.item_id(), 0));
  EXPECT_TRUE(store.has_chunk(item.item_id(), 1));
  EXPECT_FALSE(store.has_chunk(item.item_id(), 2));

  // A popular newcomer displaces the cold chunk once accesses accumulate:
  // re-inserting chunk 2 later and touching it repeatedly beats chunk 1.
  store.insert_chunk(item, 2,
                     net::ChunkPayload{.index = 2, .size_bytes = 1000},
                     SimTime::zero());
  // (denied again; cache still holds 0 and 1)
  for (int i = 0; i < 5; ++i) (void)store.chunk(item.item_id(), 0);
  EXPECT_TRUE(store.has_chunk(item.item_id(), 0));
}

TEST(ChunkCache, PinnedChunksAreNeverEvicted) {
  core::DataStore store;
  store.set_chunk_cache_limit(1000, core::ChunkEvictionPolicy::kLru,
                              SimTime::minutes(10));
  const auto item = cache_item("a", 4);
  store.insert_chunk(item, 0,
                     net::ChunkPayload{.index = 0, .size_bytes = 1000},
                     SimTime::zero(), /*pinned=*/true);
  store.insert_chunk(item, 1,
                     net::ChunkPayload{.index = 1, .size_bytes = 1000},
                     SimTime::zero(), /*pinned=*/true);
  store.insert_chunk(item, 2,
                     net::ChunkPayload{.index = 2, .size_bytes = 1000},
                     SimTime::zero());
  store.insert_chunk(item, 3,
                     net::ChunkPayload{.index = 3, .size_bytes = 1000},
                     SimTime::zero());
  EXPECT_TRUE(store.has_chunk(item.item_id(), 0));
  EXPECT_TRUE(store.has_chunk(item.item_id(), 1));
  // Only one cached chunk fits.
  EXPECT_EQ(store.cached_chunk_bytes(), 1000u);
}

TEST(ChunkCache, EvictionDemotesMetadataToExpiring) {
  core::DataStore store;
  store.set_chunk_cache_limit(1000, core::ChunkEvictionPolicy::kLru,
                              SimTime::seconds(5));
  const auto item = cache_item("a", 2);
  store.insert_chunk(item, 0,
                     net::ChunkPayload{.index = 0, .size_bytes = 1000},
                     SimTime::zero());
  store.insert_chunk(item, 1,
                     net::ChunkPayload{.index = 1, .size_bytes = 1000},
                     SimTime::zero());
  const std::uint64_t key0 = item.chunk_descriptor(0).entry_key();
  // Chunk 0 is evicted; its metadata lingers briefly, then expires.
  EXPECT_FALSE(store.has_chunk(item.item_id(), 0));
  EXPECT_TRUE(store.has_metadata(key0, SimTime::seconds(1)));
  EXPECT_FALSE(store.has_metadata(key0, SimTime::seconds(10)));
}

TEST(ChunkCache, RetrievalStillCompletesWithTinyCaches) {
  // End-to-end: relays can only cache two chunks each; the consumer must
  // still be able to pull everything from the pinned origin.
  wl::RetrievalGridParams p;
  p.nx = p.ny = 5;
  p.item_size_bytes = 2u * 1024 * 1024;  // 8 chunks
  p.pds.chunk_cache_bytes = 2 * 256 * 1024;
  p.seed = 9;
  const wl::RetrievalOutcome out = wl::run_retrieval_grid(p);
  EXPECT_TRUE(out.all_complete);
}

// -- Energy accounting ------------------------------------------------------------

TEST(Energy, TransmittersSpendMoreThanIdlers) {
  core::PdsConfig pds;
  sim::RadioConfig radio = sim::clean_radio_profile();
  radio.loss_probability = 0.0;
  wl::Scenario sc(1, radio);
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.add_node(NodeId(2), {500, 0}, pds);  // isolated: pure idle

  for (int i = 0; i < 200; ++i) {
    core::DataDescriptor d;
    d.set("seq", std::int64_t{i});
    sc.node(NodeId(1)).publish_metadata(d);
  }
  sc.node(NodeId(0)).discover(core::Filter{},
                              [](const core::DiscoverySession::Result&) {});
  sc.run_until(SimTime::seconds(30));

  const SimTime elapsed = SimTime::seconds(30);
  const double producer = sc.medium().energy_joules(NodeId(1), elapsed);
  const double idler = sc.medium().energy_joules(NodeId(2), elapsed);
  EXPECT_GT(producer, idler);
  // Idle energy is exactly idle power × time.
  EXPECT_NEAR(idler, radio.idle_power_w * 30.0, 1e-6);
  EXPECT_NEAR(sc.medium().total_energy_joules(elapsed),
              sc.medium().energy_joules(NodeId(0), elapsed) + producer + idler,
              1e-6);
}

TEST(Energy, OverhearingCostsReceiveEnergy) {
  core::PdsConfig pds;
  sim::RadioConfig radio = sim::clean_radio_profile();
  radio.loss_probability = 0.0;
  wl::Scenario sc(2, radio);
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.add_node(NodeId(2), {5, 8}, pds);  // bystander in range of both

  for (int i = 0; i < 100; ++i) {
    core::DataDescriptor d;
    d.set("seq", std::int64_t{i});
    sc.node(NodeId(1)).publish_metadata(d);
  }
  sc.node(NodeId(0)).discover(core::Filter{},
                              [](const core::DiscoverySession::Result&) {});
  sc.run_until(SimTime::seconds(30));
  EXPECT_GT(sc.medium().activity(NodeId(2)).rx_airtime, SimTime::zero());
}

// -- Wi-Fi Direct topology -----------------------------------------------------

TEST(WifiDirect, GeometryIsolatesGroupsExceptViaBridges) {
  Rng rng(3);
  const double range = 20.0;
  const sim::WifiDirectLayout layout =
      sim::wifi_direct_groups(3, 5, range, rng);
  ASSERT_EQ(layout.positions.size(), 3 * 5 + 2);
  ASSERT_EQ(layout.bridges.size(), 2u);

  // Members of the same group are mutually in range; members of different
  // groups never are.
  for (std::size_t a = 0; a < layout.positions.size(); ++a) {
    for (std::size_t b = a + 1; b < layout.positions.size(); ++b) {
      const bool bridge_involved =
          std::find(layout.bridges.begin(), layout.bridges.end(), a) !=
              layout.bridges.end() ||
          std::find(layout.bridges.begin(), layout.bridges.end(), b) !=
              layout.bridges.end();
      if (bridge_involved) continue;
      const double d = sim::distance(layout.positions[a], layout.positions[b]);
      if (layout.group_of[a] == layout.group_of[b]) {
        EXPECT_LE(d, range);
      } else {
        EXPECT_GT(d, range);
      }
    }
  }
}

TEST(WifiDirect, DiscoveryCrossesGroupsThroughBridges) {
  Rng rng(4);
  const double range = 20.0;
  const sim::WifiDirectLayout layout =
      sim::wifi_direct_groups(3, 4, range, rng);

  core::PdsConfig pds;
  sim::RadioConfig radio = sim::clean_radio_profile();
  radio.range_m = range;
  radio.loss_probability = 0.0;
  wl::Scenario sc(5, radio);
  for (std::size_t i = 0; i < layout.positions.size(); ++i) {
    sc.add_node(NodeId(static_cast<std::uint32_t>(i)), layout.positions[i],
                pds);
  }
  // Producer in the last group; consumer in the first.
  const auto producer = NodeId(static_cast<std::uint32_t>(layout.owners[2]));
  for (int i = 0; i < 30; ++i) {
    core::DataDescriptor d;
    d.set("seq", std::int64_t{i});
    sc.node(producer).publish_metadata(d);
  }
  core::DiscoverySession::Result result;
  bool done = false;
  sc.node(NodeId(static_cast<std::uint32_t>(layout.owners[0])))
      .discover(core::Filter{}, [&](const core::DiscoverySession::Result& r) {
        result = r;
        done = true;
      });
  sc.run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.distinct_received, 30u);
}

// -- Mobility trace serialization ------------------------------------------------

TEST(MobilityTrace, TextRoundTrip) {
  Rng rng(5);
  sim::MobilityParams params = sim::student_center_params();
  params.duration = SimTime::minutes(3);
  std::vector<NodeId> pool;
  for (std::uint32_t i = 0; i < 30; ++i) pool.push_back(NodeId(i));
  const std::vector<NodeId> pinned{NodeId(0)};
  const sim::MobilityTrace trace =
      sim::MobilityTrace::generate(params, pool, pinned, rng);

  const std::string text = trace.to_text();
  const sim::MobilityTrace parsed = sim::MobilityTrace::from_text(text);

  ASSERT_EQ(parsed.initial().size(), trace.initial().size());
  for (std::size_t i = 0; i < trace.initial().size(); ++i) {
    EXPECT_EQ(parsed.initial()[i].node, trace.initial()[i].node);
    EXPECT_EQ(parsed.initial()[i].pos, trace.initial()[i].pos);
    EXPECT_EQ(parsed.initial()[i].present, trace.initial()[i].present);
  }
  ASSERT_EQ(parsed.events().size(), trace.events().size());
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    EXPECT_EQ(parsed.events()[i].at, trace.events()[i].at);
    EXPECT_EQ(parsed.events()[i].kind, trace.events()[i].kind);
    EXPECT_EQ(parsed.events()[i].node, trace.events()[i].node);
    EXPECT_EQ(parsed.events()[i].pos, trace.events()[i].pos);
  }
}

}  // namespace
}  // namespace pds
