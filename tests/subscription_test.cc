// Subscription tests (§IV future work): a long-lived lingering query
// streams entries published *after* it was issued, across hops, honoring
// filters, refreshes for late joiners, and expiry.
#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds::core {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

std::unique_ptr<wl::Scenario> make_line(std::size_t n, const PdsConfig& pds,
                                        std::uint64_t seed = 1) {
  auto sc = std::make_unique<wl::Scenario>(seed, lossless_radio());
  for (std::size_t i = 0; i < n; ++i) {
    sc->add_node(NodeId(static_cast<std::uint32_t>(i)),
                 {static_cast<double>(i) * 10.0, 0.0}, pds);
  }
  return sc;
}

DataDescriptor reading(int seq, const char* type = "score") {
  DataDescriptor d;
  d.set(kAttrDataType, std::string(type));
  d.set("seq", std::int64_t{seq});
  return d;
}

TEST(Subscription, StreamsEntriesPublishedLater) {
  PdsConfig pds;
  auto sc = make_line(4, pds);

  std::vector<std::int64_t> received;
  SubscriptionSession& sub = sc->node(NodeId(0)).subscribe(
      Filter{}, SimTime::minutes(5), [&](const DataDescriptor& d) {
        received.push_back(std::get<std::int64_t>(*d.find("seq")));
      });
  // The far node publishes one entry every 2 s, starting after the
  // subscription is in place.
  for (int i = 0; i < 8; ++i) {
    sc->sim().schedule(SimTime::seconds(2.0 * (i + 1)), [&sc, i] {
      sc->node(NodeId(3)).publish_metadata(reading(i));
    });
  }
  sc->run_until(SimTime::seconds(30));
  EXPECT_TRUE(sub.active());
  ASSERT_EQ(received.size(), 8u);
  // Per-publication single-entry responses arrive in publication order over
  // a loss-free line.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(received[i], i);
}

TEST(Subscription, PreexistingEntriesArriveToo) {
  PdsConfig pds;
  auto sc = make_line(3, pds);
  for (int i = 0; i < 5; ++i) sc->node(NodeId(2)).publish_metadata(reading(i));

  std::size_t got = 0;
  sc->node(NodeId(0)).subscribe(Filter{}, SimTime::minutes(1),
                                [&](const DataDescriptor&) { ++got; });
  sc->run_until(SimTime::seconds(20));
  EXPECT_EQ(got, 5u);
}

TEST(Subscription, FilterSelectsStream) {
  PdsConfig pds;
  auto sc = make_line(3, pds);

  std::size_t got = 0;
  Filter f;
  f.where(std::string(kAttrDataType), Relation::kEq, std::string("score"));
  sc->node(NodeId(0)).subscribe(f, SimTime::minutes(1),
                                [&](const DataDescriptor&) { ++got; });
  for (int i = 0; i < 4; ++i) {
    sc->sim().schedule(SimTime::seconds(1.0 + i), [&sc, i] {
      sc->node(NodeId(2)).publish_metadata(reading(i, "score"));
      sc->node(NodeId(2)).publish_metadata(reading(100 + i, "noise"));
    });
  }
  sc->run_until(SimTime::seconds(20));
  EXPECT_EQ(got, 4u);
}

TEST(Subscription, ExpiryStopsTheStream) {
  PdsConfig pds;
  auto sc = make_line(3, pds);

  std::size_t got = 0;
  SubscriptionSession& sub = sc->node(NodeId(0)).subscribe(
      Filter{}, SimTime::seconds(5), [&](const DataDescriptor&) { ++got; });
  sc->sim().schedule(SimTime::seconds(2.0), [&sc] {
    sc->node(NodeId(2)).publish_metadata(reading(1));
  });
  sc->sim().schedule(SimTime::seconds(10.0), [&sc] {
    sc->node(NodeId(2)).publish_metadata(reading(2));
  });
  sc->run_until(SimTime::seconds(30));
  EXPECT_FALSE(sub.active());
  EXPECT_EQ(got, 1u);  // the post-expiry publication never flows
}

TEST(Subscription, CancelStopsDelivery) {
  PdsConfig pds;
  auto sc = make_line(3, pds);
  std::size_t got = 0;
  SubscriptionSession& sub = sc->node(NodeId(0)).subscribe(
      Filter{}, SimTime::minutes(5), [&](const DataDescriptor&) { ++got; });
  sc->sim().schedule(SimTime::seconds(1.0), [&sc] {
    sc->node(NodeId(2)).publish_metadata(reading(1));
  });
  sc->sim().schedule(SimTime::seconds(5.0), [&sub] { sub.cancel(); });
  sc->sim().schedule(SimTime::seconds(6.0), [&sc] {
    sc->node(NodeId(2)).publish_metadata(reading(2));
  });
  sc->run_until(SimTime::seconds(30));
  EXPECT_EQ(got, 1u);
}

TEST(Subscription, RefreshReachesLateJoiner) {
  PdsConfig pds;
  pds.subscription_refresh = SimTime::seconds(2.0);
  auto sc = make_line(4, pds);
  // Node 3 starts with its radio off and joins after the initial flood.
  sc->medium().set_enabled(NodeId(3), false);

  std::size_t got = 0;
  sc->node(NodeId(0)).subscribe(Filter{}, SimTime::minutes(5),
                                [&](const DataDescriptor&) { ++got; });
  sc->sim().schedule(SimTime::seconds(4.0), [&sc] {
    sc->medium().set_enabled(NodeId(3), true);
  });
  // Published after joining; only the refreshed lingering query can route
  // it back.
  sc->sim().schedule(SimTime::seconds(9.0), [&sc] {
    sc->node(NodeId(3)).publish_metadata(reading(42));
  });
  sc->run_until(SimTime::seconds(30));
  EXPECT_EQ(got, 1u);
}

TEST(Subscription, ItemSubscriptionCarriesPayloads) {
  PdsConfig pds;
  auto sc = make_line(3, pds);

  const SubscriptionSession* session = nullptr;
  std::size_t got = 0;
  session = &sc->node(NodeId(0)).subscribe_items(
      Filter{}, SimTime::minutes(1), [&](const DataDescriptor&) { ++got; });
  sc->sim().schedule(SimTime::seconds(1.0), [&sc] {
    net::ItemPayload item;
    item.descriptor = reading(7);
    item.size_bytes = 200;
    item.content_hash = 99;
    sc->node(NodeId(2)).publish_item(item);
  });
  sc->run_until(SimTime::seconds(20));
  ASSERT_EQ(got, 1u);
  ASSERT_EQ(session->items().size(), 1u);
  EXPECT_EQ(session->items()[0].content_hash, 99u);
  EXPECT_EQ(session->items()[0].size_bytes, 200u);
}

TEST(Subscription, TwoSubscribersShareMixedcastStream) {
  PdsConfig pds;
  auto sc = std::make_unique<wl::Scenario>(9, lossless_radio());
  // Producer at the stem, relay, two subscribers behind it.
  sc->add_node(NodeId(3), {30, 0}, pds);
  sc->add_node(NodeId(2), {20, 0}, pds);
  sc->add_node(NodeId(0), {10, 6}, pds);
  sc->add_node(NodeId(1), {10, -6}, pds);

  std::size_t got_a = 0;
  std::size_t got_b = 0;
  sc->node(NodeId(0)).subscribe(Filter{}, SimTime::minutes(1),
                                [&](const DataDescriptor&) { ++got_a; });
  sc->node(NodeId(1)).subscribe(Filter{}, SimTime::minutes(1),
                                [&](const DataDescriptor&) { ++got_b; });
  std::uint64_t relay_responses = 0;
  sc->medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
    const auto msg = std::dynamic_pointer_cast<const net::Message>(f.payload);
    if (msg != nullptr && msg->is_response() && from == NodeId(2)) {
      ++relay_responses;
    }
  });
  for (int i = 0; i < 5; ++i) {
    sc->sim().schedule(SimTime::seconds(1.0 + i), [&sc, i] {
      sc->node(NodeId(3)).publish_metadata(reading(i));
    });
  }
  sc->run_until(SimTime::seconds(30));
  EXPECT_EQ(got_a, 5u);
  EXPECT_EQ(got_b, 5u);
  // The relay served both subscribers with one mixedcast transmission per
  // publication (plus possibly a retransmission or two).
  EXPECT_LE(relay_responses, 7u);
}

}  // namespace
}  // namespace pds::core
