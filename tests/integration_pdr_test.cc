// End-to-end retrieval integration tests: PDR two-phase retrieval, the MDR
// baseline, redundancy effects, and chunk content integrity.
#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/generator.h"

namespace pds::wl {
namespace {

TEST(IntegrationPdr, RetrievesSmallItemCompletely) {
  RetrievalGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.item_size_bytes = 2u * 1024 * 1024;  // 8 chunks
  p.seed = 3;
  const RetrievalOutcome out = run_retrieval_grid(p);
  EXPECT_TRUE(out.all_complete);
  EXPECT_DOUBLE_EQ(out.recall, 1.0);
  EXPECT_GT(out.latency_s, 0.0);
  EXPECT_LT(out.latency_s, 60.0);
}

TEST(IntegrationPdr, MdrRetrievesSmallItemCompletely) {
  RetrievalGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.item_size_bytes = 2u * 1024 * 1024;
  p.method = RetrievalMethod::kMdr;
  p.seed = 3;
  const RetrievalOutcome out = run_retrieval_grid(p);
  EXPECT_TRUE(out.all_complete);
  EXPECT_DOUBLE_EQ(out.recall, 1.0);
}

TEST(IntegrationPdr, RedundantCopiesReducePdrOverheadVsMdr) {
  RetrievalGridParams p;
  p.nx = 7;
  p.ny = 7;
  p.item_size_bytes = 4u * 1024 * 1024;  // 16 chunks
  p.redundancy = 4;
  p.seed = 5;
  p.method = RetrievalMethod::kPdr;
  const RetrievalOutcome pdr = run_retrieval_grid(p);
  p.method = RetrievalMethod::kMdr;
  const RetrievalOutcome mdr = run_retrieval_grid(p);

  EXPECT_TRUE(pdr.all_complete);
  EXPECT_TRUE(mdr.all_complete);
  // With several copies per chunk, MDR transmits redundant copies along
  // different reverse paths; PDR fetches exactly one nearest copy each.
  EXPECT_LT(pdr.overhead_mb, mdr.overhead_mb);
}

TEST(IntegrationPdr, RetrievedChunksHaveCorrectContent) {
  // Drive a scenario by hand so the consumer's received payloads can be
  // checked against the generator's deterministic content hashes.
  GridSetup setup;
  setup.nx = 4;
  setup.ny = 4;
  Grid grid = make_grid(setup, /*seed=*/17);
  Scenario& sc = *grid.scenario;

  const std::size_t item_size = 1024 * 1024;
  const std::size_t chunk_size = setup.pds.chunk_size_bytes;
  const core::DataDescriptor item =
      make_chunked_item("movie", item_size, chunk_size);

  Rng rng(99);
  std::vector<core::PdsNode*> nodes = sc.nodes();
  distribute_chunks(nodes, item, item_size, chunk_size, 2, rng,
                    {grid.center});

  core::RetrievalResult result;
  bool finished = false;
  core::PdrSession& session = grid.center_node().retrieve(
      item, [&](const core::RetrievalResult& r) {
        result = r;
        finished = true;
      });
  sc.run_until(SimTime::seconds(120.0));

  ASSERT_TRUE(finished);
  ASSERT_TRUE(result.complete);
  const ItemId id = item.item_id();
  for (const auto& [index, payload] : session.chunks()) {
    EXPECT_EQ(payload.content_hash, chunk_content_hash(id, index))
        << "chunk " << index << " corrupted";
  }
}

}  // namespace
}  // namespace pds::wl
