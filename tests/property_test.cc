// Parameterized property sweeps over whole-system runs: metric sanity,
// determinism, and the dominance relations the design promises (multi-round
// ≥ single round; ack ≥ no-ack; mixedcast/Bloom reduce overhead).
#include <gtest/gtest.h>

#include <tuple>

#include "workload/experiment.h"

namespace pds::wl {
namespace {

// -- PDD invariants over (grid size, metadata amount, redundancy) ------------

using PddSweepParam = std::tuple<std::size_t, std::size_t, int>;

class PddSweep : public ::testing::TestWithParam<PddSweepParam> {};

TEST_P(PddSweep, MetricsAreSane) {
  const auto [grid, entries, redundancy] = GetParam();
  PddGridParams p;
  p.nx = p.ny = grid;
  p.metadata_count = entries;
  p.redundancy = redundancy;
  p.seed = 1000 + grid * 10 + static_cast<std::size_t>(redundancy);
  const PddOutcome out = run_pdd_grid(p);

  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.0);
  EXPECT_LE(out.recall, 1.0);
  EXPECT_GE(out.recall, 0.95) << "multi-round PDD should approach full recall";
  EXPECT_GT(out.overhead_mb, 0.0);
  EXPECT_GE(out.latency_s, 0.0);
  EXPECT_GE(out.rounds, 1.0);
  // Overhead is at least the payload the consumer received once.
  const double payload_mb = static_cast<double>(entries) * 30.0 / 1e6;
  EXPECT_GT(out.overhead_mb, payload_mb * out.recall);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PddSweep,
    ::testing::Values(PddSweepParam{5, 500, 1}, PddSweepParam{5, 500, 3},
                      PddSweepParam{7, 1500, 1}, PddSweepParam{7, 1500, 2},
                      PddSweepParam{9, 2500, 1}));

// -- PDD dominance relations ---------------------------------------------------

class PddDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PddDominance, MultiRoundNeverWorseThanSingle) {
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 1500;
  p.seed = GetParam();
  p.multi_round = false;
  const PddOutcome single = run_pdd_grid(p);
  p.multi_round = true;
  const PddOutcome multi = run_pdd_grid(p);
  EXPECT_GE(multi.recall + 1e-9, single.recall);
}

TEST_P(PddDominance, AckNeverWorseThanNoAckSingleRound) {
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 1500;
  p.multi_round = false;
  p.seed = GetParam();
  p.ack = false;
  const PddOutcome off = run_pdd_grid(p);
  p.ack = true;
  const PddOutcome on = run_pdd_grid(p);
  EXPECT_GE(on.recall + 0.02, off.recall);  // small tolerance for noise
}

INSTANTIATE_TEST_SUITE_P(Seeds, PddDominance, ::testing::Values(21, 22, 23));

// -- Determinism -----------------------------------------------------------

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 800;
  p.seed = 99;
  const PddOutcome a = run_pdd_grid(p);
  const PddOutcome b = run_pdd_grid(p);
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.overhead_mb, b.overhead_mb);
  EXPECT_DOUBLE_EQ(a.rounds, b.rounds);
}

TEST(Determinism, RetrievalRunsAreReproducible) {
  RetrievalGridParams p;
  p.nx = p.ny = 5;
  p.item_size_bytes = 2u * 1024 * 1024;
  p.seed = 77;
  const RetrievalOutcome a = run_retrieval_grid(p);
  const RetrievalOutcome b = run_retrieval_grid(p);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.overhead_mb, b.overhead_mb);
}

TEST(Determinism, DifferentSeedsDiffer) {
  PddGridParams p;
  p.nx = p.ny = 5;
  p.metadata_count = 500;
  p.seed = 1;
  const PddOutcome a = run_pdd_grid(p);
  p.seed = 2;
  const PddOutcome b = run_pdd_grid(p);
  // Placement and channel draws differ; exact metric equality would be
  // astonishing.
  EXPECT_NE(a.overhead_mb, b.overhead_mb);
}

// -- Retrieval invariants over (size, redundancy, method) -----------------

using RetrSweepParam = std::tuple<std::size_t, int, RetrievalMethod>;

class RetrievalSweep : public ::testing::TestWithParam<RetrSweepParam> {};

TEST_P(RetrievalSweep, CompletesWithExactChunkCount) {
  const auto [mib, redundancy, method] = GetParam();
  RetrievalGridParams p;
  p.nx = p.ny = 7;
  p.item_size_bytes = mib * 1024 * 1024;
  p.redundancy = redundancy;
  p.method = method;
  p.seed = 500 + mib + static_cast<std::size_t>(redundancy);
  const RetrievalOutcome out = run_retrieval_grid(p);
  EXPECT_TRUE(out.all_complete);
  EXPECT_DOUBLE_EQ(out.recall, 1.0);
  EXPECT_GT(out.latency_s, 0.0);
  // Overhead at least the item size (it crossed the air at least once).
  EXPECT_GT(out.overhead_mb,
            static_cast<double>(p.item_size_bytes) / 1e6 * 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMethods, RetrievalSweep,
    ::testing::Values(RetrSweepParam{1, 1, RetrievalMethod::kPdr},
                      RetrSweepParam{4, 1, RetrievalMethod::kPdr},
                      RetrSweepParam{4, 3, RetrievalMethod::kPdr},
                      RetrSweepParam{1, 1, RetrievalMethod::kMdr},
                      RetrSweepParam{4, 2, RetrievalMethod::kMdr}));

// -- Ablation dominance ---------------------------------------------------------

TEST(Ablations, GapBalancingNeverHurtsCompleteness) {
  RetrievalGridParams p;
  p.nx = p.ny = 7;
  p.item_size_bytes = 4u * 1024 * 1024;
  p.redundancy = 3;
  p.seed = 31;
  p.pds.enable_gap_balancing = false;
  const RetrievalOutcome naive = run_retrieval_grid(p);
  p.pds.enable_gap_balancing = true;
  const RetrievalOutcome balanced = run_retrieval_grid(p);
  EXPECT_TRUE(balanced.all_complete);
  EXPECT_TRUE(naive.all_complete);
}

TEST(Ablations, LingeringQueriesReduceOverheadUnderMultipleRounds) {
  // One-shot (NDN-style) queries are consumed by the first matching
  // response relay, so later entries need fresh rounds; lingering queries
  // let one query drain the whole stream.
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 1500;
  p.seed = 41;
  p.pds.enable_lingering_queries = false;
  const PddOutcome oneshot = run_pdd_grid(p);
  p.pds.enable_lingering_queries = true;
  const PddOutcome lingering = run_pdd_grid(p);
  EXPECT_GE(lingering.recall, 0.99);
  // One-shot needs at least as many rounds to reach its recall.
  EXPECT_GE(oneshot.rounds + 0.001, lingering.rounds);
}

}  // namespace
}  // namespace pds::wl
