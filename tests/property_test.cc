// Parameterized property sweeps over whole-system runs: metric sanity,
// determinism, the dominance relations the design promises (multi-round
// ≥ single round; ack ≥ no-ack; mixedcast/Bloom reduce overhead), and the
// protocol invariants that must survive arbitrary fault schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "net/bloom_delta.h"
#include "obs/trace.h"
#include "util/bloom_filter.h"
#include "workload/experiment.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds::wl {
namespace {

// -- PDD invariants over (grid size, metadata amount, redundancy) ------------

using PddSweepParam = std::tuple<std::size_t, std::size_t, int>;

class PddSweep : public ::testing::TestWithParam<PddSweepParam> {};

TEST_P(PddSweep, MetricsAreSane) {
  const auto [grid, entries, redundancy] = GetParam();
  PddGridParams p;
  p.nx = p.ny = grid;
  p.metadata_count = entries;
  p.redundancy = redundancy;
  p.seed = 1000 + grid * 10 + static_cast<std::size_t>(redundancy);
  const PddOutcome out = run_pdd_grid(p);

  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.0);
  EXPECT_LE(out.recall, 1.0);
  EXPECT_GE(out.recall, 0.95) << "multi-round PDD should approach full recall";
  EXPECT_GT(out.overhead_mb, 0.0);
  EXPECT_GE(out.latency_s, 0.0);
  EXPECT_GE(out.rounds, 1.0);
  // Overhead is at least the payload the consumer received once.
  const double payload_mb = static_cast<double>(entries) * 30.0 / 1e6;
  EXPECT_GT(out.overhead_mb, payload_mb * out.recall);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PddSweep,
    ::testing::Values(PddSweepParam{5, 500, 1}, PddSweepParam{5, 500, 3},
                      PddSweepParam{7, 1500, 1}, PddSweepParam{7, 1500, 2},
                      PddSweepParam{9, 2500, 1}));

// -- PDD dominance relations ---------------------------------------------------

class PddDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PddDominance, MultiRoundNeverWorseThanSingle) {
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 1500;
  p.seed = GetParam();
  p.multi_round = false;
  const PddOutcome single = run_pdd_grid(p);
  p.multi_round = true;
  const PddOutcome multi = run_pdd_grid(p);
  EXPECT_GE(multi.recall + 1e-9, single.recall);
}

TEST_P(PddDominance, AckNeverWorseThanNoAckSingleRound) {
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 1500;
  p.multi_round = false;
  p.seed = GetParam();
  p.ack = false;
  const PddOutcome off = run_pdd_grid(p);
  p.ack = true;
  const PddOutcome on = run_pdd_grid(p);
  EXPECT_GE(on.recall + 0.02, off.recall);  // small tolerance for noise
}

INSTANTIATE_TEST_SUITE_P(Seeds, PddDominance, ::testing::Values(21, 22, 23));

// -- Determinism -----------------------------------------------------------

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 800;
  p.seed = 99;
  const PddOutcome a = run_pdd_grid(p);
  const PddOutcome b = run_pdd_grid(p);
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.overhead_mb, b.overhead_mb);
  EXPECT_DOUBLE_EQ(a.rounds, b.rounds);
}

TEST(Determinism, RetrievalRunsAreReproducible) {
  RetrievalGridParams p;
  p.nx = p.ny = 5;
  p.item_size_bytes = 2u * 1024 * 1024;
  p.seed = 77;
  const RetrievalOutcome a = run_retrieval_grid(p);
  const RetrievalOutcome b = run_retrieval_grid(p);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.overhead_mb, b.overhead_mb);
}

TEST(Determinism, DifferentSeedsDiffer) {
  PddGridParams p;
  p.nx = p.ny = 5;
  p.metadata_count = 500;
  p.seed = 1;
  const PddOutcome a = run_pdd_grid(p);
  p.seed = 2;
  const PddOutcome b = run_pdd_grid(p);
  // Placement and channel draws differ; exact metric equality would be
  // astonishing.
  EXPECT_NE(a.overhead_mb, b.overhead_mb);
}

// -- Retrieval invariants over (size, redundancy, method) -----------------

using RetrSweepParam = std::tuple<std::size_t, int, RetrievalMethod>;

class RetrievalSweep : public ::testing::TestWithParam<RetrSweepParam> {};

TEST_P(RetrievalSweep, CompletesWithExactChunkCount) {
  const auto [mib, redundancy, method] = GetParam();
  RetrievalGridParams p;
  p.nx = p.ny = 7;
  p.item_size_bytes = mib * 1024 * 1024;
  p.redundancy = redundancy;
  p.method = method;
  p.seed = 500 + mib + static_cast<std::size_t>(redundancy);
  const RetrievalOutcome out = run_retrieval_grid(p);
  EXPECT_TRUE(out.all_complete);
  EXPECT_DOUBLE_EQ(out.recall, 1.0);
  EXPECT_GT(out.latency_s, 0.0);
  // Overhead at least the item size (it crossed the air at least once).
  EXPECT_GT(out.overhead_mb,
            static_cast<double>(p.item_size_bytes) / 1e6 * 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMethods, RetrievalSweep,
    ::testing::Values(RetrSweepParam{1, 1, RetrievalMethod::kPdr},
                      RetrSweepParam{4, 1, RetrievalMethod::kPdr},
                      RetrSweepParam{4, 3, RetrievalMethod::kPdr},
                      RetrSweepParam{1, 1, RetrievalMethod::kMdr},
                      RetrSweepParam{4, 2, RetrievalMethod::kMdr}));

// -- Ablation dominance ---------------------------------------------------------

TEST(Ablations, GapBalancingNeverHurtsCompleteness) {
  RetrievalGridParams p;
  p.nx = p.ny = 7;
  p.item_size_bytes = 4u * 1024 * 1024;
  p.redundancy = 3;
  p.seed = 31;
  p.pds.enable_gap_balancing = false;
  const RetrievalOutcome naive = run_retrieval_grid(p);
  p.pds.enable_gap_balancing = true;
  const RetrievalOutcome balanced = run_retrieval_grid(p);
  EXPECT_TRUE(balanced.all_complete);
  EXPECT_TRUE(naive.all_complete);
}

TEST(Ablations, LingeringQueriesReduceOverheadUnderMultipleRounds) {
  // One-shot (NDN-style) queries are consumed by the first matching
  // response relay, so later entries need fresh rounds; lingering queries
  // let one query drain the whole stream.
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 1500;
  p.seed = 41;
  p.pds.enable_lingering_queries = false;
  const PddOutcome oneshot = run_pdd_grid(p);
  p.pds.enable_lingering_queries = true;
  const PddOutcome lingering = run_pdd_grid(p);
  EXPECT_GE(lingering.recall, 0.99);
  // One-shot needs at least as many rounds to reach its recall.
  EXPECT_GE(oneshot.rounds + 0.001, lingering.rounds);
}

// -- Invariants under random fault schedules (DESIGN.md §11) ----------------
//
// A seeded generator scripts crashes, churn, partitions, burst channels,
// lossy links and buffer storms against a 5×5 grid while one consumer runs a
// full discover-then-retrieve workload. Whatever the schedule does, the
// protocol must keep its books straight:
//  * a node never serves/relays an entry the query's original Bloom filter
//    covers (redundancy detection, §III-B.2/§V.3);
//  * the consumer application never sees the same chunk delivered twice;
//  * once the permanently crashed provider's give-up signals and CDI TTLs
//    have run out, no live node still routes chunk queries through it;
//  * every session terminates and no lingering query outlives its expiry.

constexpr std::size_t kFaultCaseEntries = 120;
constexpr std::size_t kFaultCaseChunks = 8;
constexpr std::size_t kFaultCaseChunkBytes = 64 * 1024;

struct FaultCaseOutcome {
  bool discovery_done = false;
  bool retrieval_done = false;
  std::size_t distinct_received = 0;
  core::RetrievalResult retrieval;
  std::size_t session_chunks = 0;
  std::size_t session_arrivals = 0;
  std::size_t bloom_violations = 0;
  std::size_t routes_via_crashed = 0;
  std::size_t stuck_queries = 0;
  std::vector<std::int64_t> chunk_arrival_trace;  // chunk ids at the consumer
  std::string ndjson;
};

std::int64_t arg_value(const obs::TraceEvent& e, const char* key) {
  for (std::uint8_t i = 0; i < e.arg_count; ++i) {
    const obs::Arg& a = e.args[i];
    if (a.key == nullptr || std::strcmp(a.key, key) != 0) continue;
    if (a.kind == obs::Arg::Kind::kInt) return a.i;
    if (a.kind == obs::Arg::Kind::kUint) return static_cast<std::int64_t>(a.u);
    return 0;
  }
  return -1;
}

// Everything — topology, placement, victims and fault times — derives from
// `seed`, so a rerun with the same seed replays the identical schedule.
FaultCaseOutcome run_random_fault_case(std::uint64_t seed) {
  FaultCaseOutcome out;
  obs::Tracer tracer(0);  // unbounded: keep the full stream

  GridSetup setup;
  setup.nx = setup.ny = 5;
  setup.pds.chunk_size_bytes = kFaultCaseChunkBytes;
  Grid grid = make_grid(setup, seed);
  Scenario& sc = *grid.scenario;
  sc.set_tracer(&tracer);

  Rng rng(seed * 0x9e3779b9u + 17);
  std::vector<NodeId> others;  // everyone but the consumer
  for (NodeId id : grid.ids) {
    if (id != grid.center) others.push_back(id);
  }
  const auto pick_other = [&](std::vector<NodeId>& exclude) {
    for (;;) {
      const NodeId id = others[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(others.size()) - 1))];
      if (std::find(exclude.begin(), exclude.end(), id) == exclude.end()) {
        exclude.push_back(id);
        return id;
      }
    }
  };

  // Redundancy-2 metadata plus one chunked item on two holders; holder h1
  // crashes permanently mid-retrieval, h2 survives untouched.
  std::vector<NodeId> reserved;
  const NodeId h1 = pick_other(reserved);
  const NodeId h2 = pick_other(reserved);
  const auto item = make_chunked_item(
      "clip", kFaultCaseChunks * kFaultCaseChunkBytes, kFaultCaseChunkBytes);
  for (ChunkIndex c = 0; c < kFaultCaseChunks; ++c) {
    const auto chunk = make_chunk(item, c,
                                  kFaultCaseChunks * kFaultCaseChunkBytes,
                                  kFaultCaseChunkBytes);
    sc.node(h1).publish_chunk(item, chunk);
    sc.node(h2).publish_chunk(item, chunk);
  }
  for (std::size_t i = 0; i < kFaultCaseEntries; ++i) {
    core::DataDescriptor d;
    d.set("seq", static_cast<std::int64_t>(i));
    std::vector<NodeId> placed;
    sc.node(pick_other(placed)).publish_metadata(d);
    sc.node(pick_other(placed)).publish_metadata(d);
  }

  // The schedule: one permanent provider crash plus four random faults on
  // nodes that are neither the consumer nor the surviving holder.
  sim::FaultSchedule faults;
  faults.crash(SimTime::seconds(rng.uniform(6.0, 12.0)), h1,
               /*wipe=*/rng.bernoulli(0.5));
  std::vector<NodeId> faulted = reserved;  // h1, h2 are off limits
  for (int f = 0; f < 4; ++f) {
    const NodeId v = pick_other(faulted);
    const SimTime at = SimTime::seconds(rng.uniform(0.3, 10.0));
    const SimTime until = at + SimTime::seconds(rng.uniform(5.0, 15.0));
    switch (rng.uniform_int(0, 5)) {
      case 0:
        faults.churn(at, until, v);
        break;
      case 1:
        faults.crash(at, v, rng.bernoulli(0.5)).restart(until, v);
        break;
      case 2:
        faults.burst(at, until, v);
        break;
      case 3:
        faults.buffer_storm(at, v);
        break;
      case 4: {
        std::vector<NodeId> peer_pick{v};
        const NodeId peer = pick_other(peer_pick);
        faults.link_loss(at, v, peer, rng.uniform(0.3, 0.8))
            .link_restore(until, v, peer);
        break;
      }
      default: {
        std::vector<NodeId> rest;
        for (NodeId id : grid.ids) {
          if (id != v) rest.push_back(id);
        }
        faults.partition(at, until, {v}, rest);
        break;
      }
    }
  }
  sc.install_faults(faults);

  // Bloom invariant probe, sampled while traffic is live: a served key must
  // never be one the query's *original* (immutable) Bloom filter covered —
  // the mutable rewritten copy only grows, so a violation here means some
  // node transmitted an entry its upstream had already declared held.
  for (int p = 1; p <= 90; ++p) {
    sc.sim().schedule_at(SimTime::millis(500 * p), [&sc, &out] {
      const SimTime now = sc.sim().now();
      for (core::PdsNode* n : sc.nodes()) {
        if (n->crashed()) continue;
        for (const net::ContentKind kind :
             {net::ContentKind::kMetadata, net::ContentKind::kItem}) {
          for (core::LingeringQuery* lq : n->lqt().live_queries(kind, now)) {
            for (const std::uint64_t key : lq->served_keys) {
              if (lq->query->exclude.maybe_contains(key)) {
                ++out.bloom_violations;
              }
            }
          }
        }
      }
    });
  }

  core::PdsNode& consumer = grid.center_node();
  core::PdrSession* session = nullptr;
  consumer.discover(
      core::Filter{}, [&](const core::DiscoverySession::Result& r) {
        out.discovery_done = true;
        out.distinct_received = r.distinct_received;
        session = &consumer.retrieve(item, [&](const core::RetrievalResult& rr) {
          out.retrieval_done = true;
          out.retrieval = rr;
        });
      });
  sc.run_until(SimTime::seconds(300));

  if (session != nullptr) {
    out.session_chunks = session->chunks().size();
    out.session_arrivals = session->arrivals().size();
  }
  const SimTime now = sc.sim().now();
  for (core::PdsNode* n : sc.nodes()) {
    if (n->id() == h1 || n->crashed()) continue;
    out.routes_via_crashed += n->cdi_table().routes_via(h1, now);
    n->lqt().sweep(now);
    out.stuck_queries += n->lqt().size();
  }
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.node == grid.center.value() &&
        std::strcmp(e.subsystem, "pdr") == 0 &&
        std::strcmp(e.name, "chunk_arrival") == 0) {
      out.chunk_arrival_trace.push_back(arg_value(e, "chunk"));
    }
  }
  out.ndjson = tracer.ndjson();
  return out;
}

class RandomFaultSchedule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFaultSchedule, InvariantsHold) {
  const FaultCaseOutcome out = run_random_fault_case(GetParam());

  // Sessions terminate under a generous horizon.
  EXPECT_TRUE(out.discovery_done);
  EXPECT_TRUE(out.retrieval_done);
  EXPECT_GT(out.distinct_received, 0u);
  // 120 entries plus the chunked item's own metadata: one item-level entry
  // and one per published chunk.
  EXPECT_LE(out.distinct_received,
            kFaultCaseEntries + kFaultCaseChunks + 1);

  // No entry transmitted to a node whose Bloom filter covers it.
  EXPECT_EQ(out.bloom_violations, 0u);

  // No duplicate chunk deliveries: every arrival traced at the consumer is a
  // distinct chunk, and the session's books agree with the result.
  std::vector<std::int64_t> chunks = out.chunk_arrival_trace;
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(std::adjacent_find(chunks.begin(), chunks.end()), chunks.end())
      << "a chunk was delivered to the consumer application twice";
  EXPECT_EQ(chunks.size(), out.retrieval.chunks_received);
  EXPECT_EQ(out.session_chunks, out.retrieval.chunks_received);
  EXPECT_EQ(out.session_arrivals, out.retrieval.chunks_received);
  EXPECT_LE(out.retrieval.chunks_received, kFaultCaseChunks);
  // The surviving holder has every chunk, so retrieval must complete.
  EXPECT_TRUE(out.retrieval.complete);
  EXPECT_EQ(out.retrieval.chunks_received, kFaultCaseChunks);

  // The CDI tables never keep routing through the permanently crashed
  // provider once give-up signals and TTL expiry have done their work.
  EXPECT_EQ(out.routes_via_crashed, 0u);
  EXPECT_EQ(out.stuck_queries, 0u);
}

TEST_P(RandomFaultSchedule, SameSeedSameScheduleIsByteIdentical) {
  const FaultCaseOutcome a = run_random_fault_case(GetParam());
  const FaultCaseOutcome b = run_random_fault_case(GetParam());
  EXPECT_EQ(a.distinct_received, b.distinct_received);
  EXPECT_EQ(a.retrieval.chunks_received, b.retrieval.chunks_received);
  EXPECT_EQ(a.retrieval.complete, b.retrieval.complete);
  EXPECT_FALSE(a.ndjson.empty());
  EXPECT_EQ(a.ndjson, b.ndjson);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFaultSchedule,
                         ::testing::Values(601, 602, 603));

// -- Delta-Bloom sync reconvergence (DESIGN.md §16) ---------------------------
//
// Random filter-mutation sequences with random frame loss: a receiver that
// misses deltas falls back to the last filter it successfully applied — or
// the empty filter if it has none — which is recall-safe because every
// applied filter is one the consumer actually shipped. It must reconverge
// on the sender's exact filter within kFullFrameEvery frames of losses
// stopping, because every kFullFrameEvery-th frame is a sparse full
// snapshot.

class DeltaBloomReconvergence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaBloomReconvergence, RandomLossReconvergesAfterResync) {
  Rng rng(GetParam());
  net::DeltaBloomSender sender;
  net::BloomSyncCache cache;
  const std::uint64_t session = rng.next_u64();

  util::BloomFilter filter =
      util::BloomFilter::with_capacity(4096, 0.01, rng.next_u64());
  std::uint32_t epoch = 1;
  std::uint32_t frames_since_loss = 1u << 20;  // no loss yet
  std::unordered_set<std::uint64_t> shipped_checks;

  for (int step = 0; step < 120; ++step) {
    // Occasionally bump the epoch (fresh hash family), as DiscoverySession
    // does on capacity overflow and for the confirmation round.
    bool epoch_bumped = false;
    if (rng.bernoulli(0.05)) {
      ++epoch;
      filter = util::BloomFilter::with_capacity(4096, 0.01, rng.next_u64());
      epoch_bumped = true;
    }
    const int inserts = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < inserts; ++i) filter.insert(rng.next_u64());

    const net::BloomDeltaFrame frame =
        sender.next_frame(session, epoch, filter, epoch_bumped);
    shipped_checks.insert(net::bloom_check(filter));

    if (!frame.full && rng.bernoulli(0.25)) {
      frames_since_loss = 0;  // delta lost in flight; receiver never sees it
      continue;
    }
    ++frames_since_loss;

    const util::BloomFilter got = cache.apply(frame);
    if (frame.full) {
      // A full frame always restores exact sync, loss history or not.
      ASSERT_EQ(net::bloom_check(got), net::bloom_check(filter))
          << "full frame failed to resync at step " << step;
    } else if (frames_since_loss > net::kFullFrameEvery) {
      // Far enough from the last loss that a full frame must have landed.
      ASSERT_EQ(net::bloom_check(got), net::bloom_check(filter))
          << "delta chain diverged at step " << step;
    } else if (net::bloom_check(got) != net::bloom_check(filter)) {
      // Desynced window after a loss: the fallback must be the empty
      // filter or a filter the sender previously shipped — it may only
      // suppress entries the consumer already announced, never hold
      // corrupt half-applied state.
      ASSERT_TRUE(got.empty_filter() ||
                  shipped_checks.contains(net::bloom_check(got)))
          << "desynced receiver holds a never-shipped filter at step "
          << step;
    }
  }
  // Loss is long over after the final stretch of applied frames only if the
  // last frames applied; drive a clean tail to force reconvergence.
  for (std::uint32_t i = 0; i <= net::kFullFrameEvery; ++i) {
    filter.insert(rng.next_u64());
    const util::BloomFilter got =
        cache.apply(sender.next_frame(session, epoch, filter));
    if (i == net::kFullFrameEvery) {
      EXPECT_EQ(net::bloom_check(got), net::bloom_check(filter))
          << "receiver failed to reconverge within kFullFrameEvery frames";
    }
  }
  EXPECT_EQ(cache.session_count(), 1u);
}

TEST(DeltaBloomReconvergence, DuplicateAndReorderedFramesAreHarmless) {
  Rng rng(77);
  net::DeltaBloomSender sender;
  net::BloomSyncCache cache;
  util::BloomFilter filter =
      util::BloomFilter::with_capacity(1024, 0.01, 9);

  std::vector<net::BloomDeltaFrame> history;
  for (int step = 0; step < 12; ++step) {
    for (int i = 0; i < 16; ++i) filter.insert(rng.next_u64());
    history.push_back(sender.next_frame(1, 1, filter));
    (void)cache.apply(history.back());
  }
  const std::uint64_t synced = net::bloom_check(cache.apply(
      [&] {
        filter.insert(rng.next_u64());
        return sender.next_frame(1, 1, filter);
      }()));
  ASSERT_EQ(synced, net::bloom_check(filter));

  // Flood duplicates deliver old frames again, in any order: the cache must
  // ignore them (same epoch, seq <= cached) and keep the synced filter.
  rng.shuffle(history);
  for (const net::BloomDeltaFrame& stale : history) {
    const util::BloomFilter got = cache.apply(stale);
    EXPECT_EQ(net::bloom_check(got), net::bloom_check(filter));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaBloomReconvergence,
                         ::testing::Values(901, 902, 903, 904, 905));

}  // namespace
}  // namespace pds::wl
