// Unit tests for src/obs: metrics registry (counters/gauges/histograms,
// snapshot/diff/merge, exposed-struct views) and the sim-time tracer (ring
// buffer, NDJSON/Chrome rendering, macro no-eval guarantees), plus the
// tools/trace_reader.h parser against the writer.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/sim_clock.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/radio.h"
#include "sim/simulator.h"
#include "tools/trace_reader.h"
#include "workload/scenario.h"

namespace pds::obs {
namespace {

TEST(MetricsRegistry, CounterHandlesAreStableAndIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.counter("pdd.rounds");
  a->inc();
  a->inc(4);
  // Same name returns the same handle; churn must not invalidate it.
  for (int i = 0; i < 100; ++i) {
    registry.counter("churn." + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("pdd.rounds"), a);
  EXPECT_EQ(a->value(), 5u);
}

TEST(MetricsRegistry, GaugeAndHistogram) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("lqt.size");
  g->set(3.0);
  g->add(2.0);
  EXPECT_DOUBLE_EQ(g->value(), 5.0);

  Histogram* h = registry.histogram("latency_s", {0.1, 1.0, 10.0});
  h->observe(0.05);   // bucket 0
  h->observe(0.5);    // bucket 1
  h->observe(100.0);  // overflow bucket
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 100.55);
  ASSERT_EQ(h->buckets().size(), 4u);
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->buckets()[2], 0u);
  EXPECT_EQ(h->buckets()[3], 1u);
}

TEST(MetricsRegistry, ExposedCounterIsAViewOverTheField) {
  MetricsRegistry registry;
  std::uint64_t field = 7;
  registry.expose_counter("radio.frames_offered", &field);
  EXPECT_EQ(registry.snapshot().counters.at("radio.frames_offered"), 7u);
  // The registry reads through the pointer at snapshot time — hot-path
  // increments stay plain `++field` on the original struct.
  field += 3;
  EXPECT_EQ(registry.snapshot().counters.at("radio.frames_offered"), 10u);
}

TEST(MetricsRegistry, SnapshotDiffAttributesAPhase) {
  MetricsRegistry registry;
  Counter* c = registry.counter("tx");
  Gauge* g = registry.gauge("depth");
  c->inc(10);
  g->set(4.0);
  const MetricsSnapshot before = registry.snapshot();
  c->inc(5);
  g->set(9.0);
  const MetricsSnapshot delta = diff(registry.snapshot(), before);
  EXPECT_EQ(delta.counters.at("tx"), 5u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("depth"), 9.0);  // gauges keep later value
}

TEST(MetricsRegistry, MergeAggregatesRuns) {
  MetricsRegistry a, b;
  a.counter("tx")->inc(3);
  b.counter("tx")->inc(4);
  b.counter("only_b")->inc(1);
  a.histogram("h", {1.0})->observe(0.5);
  b.histogram("h", {1.0})->observe(2.0);
  const MetricsSnapshot sum = merge(a.snapshot(), b.snapshot());
  EXPECT_EQ(sum.counters.at("tx"), 7u);
  EXPECT_EQ(sum.counters.at("only_b"), 1u);
  EXPECT_EQ(sum.histograms.at("h").count, 2u);
  EXPECT_EQ(sum.histograms.at("h").buckets[0], 1u);
  EXPECT_EQ(sum.histograms.at("h").buckets[1], 1u);
}

TEST(MetricsRegistry, ScenarioAdapterExposesRadioAndTransportStats) {
  wl::GridSetup setup;
  setup.nx = setup.ny = 2;
  wl::Grid grid = wl::make_grid(setup, 1);
  MetricsRegistry registry;
  grid.scenario->register_metrics(registry);
  const MetricsSnapshot snap = registry.snapshot();
  // Medium stats and per-node transport stats appear under stable names.
  EXPECT_TRUE(snap.counters.contains("radio.frames_transmitted"));
  EXPECT_TRUE(snap.counters.contains("radio.bytes_transmitted"));
  EXPECT_TRUE(snap.counters.contains("node0.transport.messages_sent"));
  EXPECT_TRUE(snap.counters.contains("node3.transport.fragments_sent"));
  EXPECT_TRUE(
      snap.counters.contains("node0.transport.frames_dropped_overflow"));
}

TEST(SimClock, SimulatorRegistersClockAndScopedNodeNests) {
  EXPECT_EQ(current_sim_clock(), nullptr);
  EXPECT_EQ(current_log_node(), NodeId::invalid().value());
  {
    sim::Simulator outer(1);
    ASSERT_NE(current_sim_clock(), nullptr);
    EXPECT_EQ(*current_sim_clock(), SimTime::zero());
    {
      // A nested simulator (e.g. a sub-experiment) shadows, then restores.
      sim::Simulator inner(2);
      inner.schedule(SimTime::seconds(1.5), [] {
        EXPECT_DOUBLE_EQ(current_sim_clock()->as_seconds(), 1.5);
      });
      inner.run(SimTime::seconds(2.0));
    }
    ASSERT_NE(current_sim_clock(), nullptr);
    EXPECT_EQ(*current_sim_clock(), SimTime::zero());

    const ScopedLogNode a(NodeId(4));
    EXPECT_EQ(current_log_node(), 4u);
    {
      const ScopedLogNode b(NodeId(9));
      EXPECT_EQ(current_log_node(), 9u);
    }
    EXPECT_EQ(current_log_node(), 4u);
  }
  EXPECT_EQ(current_sim_clock(), nullptr);
}

TEST(Tracer, RingBufferDropsOldestAtCapacity) {
  Tracer tracer(2);
  tracer.instant(SimTime::micros(1), NodeId(0), "s", "a");
  tracer.instant(SimTime::micros(2), NodeId(0), "s", "b");
  tracer.instant(SimTime::micros(3), NodeId(0), "s", "c");
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_STREQ(tracer.events().front().name, "b");
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, NdjsonIsExactAndTyped) {
  Tracer tracer;
  tracer.begin(SimTime::micros(1500), NodeId(7), "pdd", "round",
               {{"round", 1}, {"ratio", 0.5}, {"why", "test"}});
  EXPECT_EQ(tracer.ndjson(),
            "{\"t\":1500,\"node\":7,\"ph\":\"B\",\"sub\":\"pdd\","
            "\"ev\":\"round\",\"args\":{\"round\":1,\"ratio\":0.5,"
            "\"why\":\"test\"}}\n");
}

TEST(Tracer, ChromeTraceRendersPhasesAndTids) {
  Tracer tracer;
  tracer.begin(SimTime::micros(10), NodeId(3), "pdd", "round", {{"round", 1}});
  tracer.end(SimTime::micros(20), NodeId(3), "pdd", "round");
  tracer.instant(SimTime::micros(15), NodeId(4), "radio", "tx");
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"B\",\"ts\":10,\"pid\":0,\"tid\":3"),
            std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"E\",\"ts\":20"), std::string::npos);
  // Instants carry a scope field for chrome://tracing.
  EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
}

TEST(Tracer, MacroSkipsArgEvaluationWhenDetachedOrDisabled) {
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return std::int64_t{42};
  };
  Tracer* detached = nullptr;
  PDS_TRACE_INSTANT(detached, SimTime::zero(), NodeId(0), "s", "e",
                    {"v", expensive()});
  EXPECT_EQ(evaluations, 0);

  Tracer tracer;
  tracer.set_enabled(false);
  PDS_TRACE_INSTANT(&tracer, SimTime::zero(), NodeId(0), "s", "e",
                    {"v", expensive()});
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(tracer.events().empty());

  tracer.set_enabled(true);
  PDS_TRACE_INSTANT(&tracer, SimTime::zero(), NodeId(0), "s", "e",
                    {"v", expensive()});
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(tracer.events().size(), 1u);
}

TEST(Tracer, StringArgsAreEscaped) {
  Tracer tracer;
  tracer.instant(SimTime::zero(), NodeId(0), "s", "e",
                 {{"text", "a\"b\\c\nd"}});
  EXPECT_NE(tracer.ndjson().find("\"text\":\"a\\\"b\\\\c\\nd\""),
            std::string::npos);
}

TEST(TraceReader, ParsesWriterOutputExactly) {
  Tracer tracer;
  tracer.instant(SimTime::micros(250), NodeId(9), "transport", "retransmit",
                 {{"round", 2}, {"awaiting", std::uint64_t{3}}});
  std::istringstream in(tracer.ndjson());
  std::size_t bad_line = 0;
  const auto events = tools::read_trace(in, bad_line);
  EXPECT_EQ(bad_line, 0u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t_us, 250);
  EXPECT_EQ(events[0].node, 9u);
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_EQ(events[0].sub, "transport");
  EXPECT_EQ(events[0].ev, "retransmit");
  EXPECT_DOUBLE_EQ(events[0].num("round"), 2.0);
  EXPECT_DOUBLE_EQ(events[0].num("awaiting"), 3.0);
  EXPECT_EQ(events[0].arg("missing"), nullptr);
}

TEST(TraceReader, RejectsMalformedLines) {
  std::istringstream in(
      "{\"t\":1,\"node\":0,\"ph\":\"i\",\"sub\":\"s\",\"ev\":\"e\","
      "\"args\":{}}\nnot json\n");
  std::size_t bad_line = 0;
  const auto events = tools::read_trace(in, bad_line);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_EQ(bad_line, 2u);
}

}  // namespace
}  // namespace pds::obs
