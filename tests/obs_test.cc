// Unit tests for src/obs: metrics registry (counters/gauges/histograms,
// snapshot/diff/merge, exposed-struct views), the sim-time tracer (ring
// buffer, NDJSON/Chrome rendering, macro no-eval guarantees) with the
// tools/trace_reader.h parser, and the flight recorder (obs/timeseries.h
// sampler, obs/profiler.h scoped profiler) with the tools/stats_analysis.h
// parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/sim_clock.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/radio.h"
#include "sim/simulator.h"
#include "tools/stats_analysis.h"
#include "tools/trace_reader.h"
#include "workload/scenario.h"

namespace pds::obs {
namespace {

TEST(MetricsRegistry, CounterHandlesAreStableAndIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.counter("pdd.rounds");
  a->inc();
  a->inc(4);
  // Same name returns the same handle; churn must not invalidate it.
  for (int i = 0; i < 100; ++i) {
    registry.counter("churn." + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("pdd.rounds"), a);
  EXPECT_EQ(a->value(), 5u);
}

TEST(MetricsRegistry, GaugeAndHistogram) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("lqt.size");
  g->set(3.0);
  g->add(2.0);
  EXPECT_DOUBLE_EQ(g->value(), 5.0);

  Histogram* h = registry.histogram("latency_s", {0.1, 1.0, 10.0});
  h->observe(0.05);   // bucket 0
  h->observe(0.5);    // bucket 1
  h->observe(100.0);  // overflow bucket
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 100.55);
  ASSERT_EQ(h->buckets().size(), 4u);
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->buckets()[2], 0u);
  EXPECT_EQ(h->buckets()[3], 1u);
}

TEST(MetricsRegistry, ExposedCounterIsAViewOverTheField) {
  MetricsRegistry registry;
  std::uint64_t field = 7;
  registry.expose_counter("radio.frames_offered", &field);
  EXPECT_EQ(registry.snapshot().counters.at("radio.frames_offered"), 7u);
  // The registry reads through the pointer at snapshot time — hot-path
  // increments stay plain `++field` on the original struct.
  field += 3;
  EXPECT_EQ(registry.snapshot().counters.at("radio.frames_offered"), 10u);
}

TEST(MetricsRegistry, SnapshotDiffAttributesAPhase) {
  MetricsRegistry registry;
  Counter* c = registry.counter("tx");
  Gauge* g = registry.gauge("depth");
  c->inc(10);
  g->set(4.0);
  const MetricsSnapshot before = registry.snapshot();
  c->inc(5);
  g->set(9.0);
  const MetricsSnapshot delta = diff(registry.snapshot(), before);
  EXPECT_EQ(delta.counters.at("tx"), 5u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("depth"), 9.0);  // gauges keep later value
}

TEST(MetricsRegistry, MergeAggregatesRuns) {
  MetricsRegistry a, b;
  a.counter("tx")->inc(3);
  b.counter("tx")->inc(4);
  b.counter("only_b")->inc(1);
  a.histogram("h", {1.0})->observe(0.5);
  b.histogram("h", {1.0})->observe(2.0);
  const MetricsSnapshot sum = merge(a.snapshot(), b.snapshot());
  EXPECT_EQ(sum.counters.at("tx"), 7u);
  EXPECT_EQ(sum.counters.at("only_b"), 1u);
  EXPECT_EQ(sum.histograms.at("h").count, 2u);
  EXPECT_EQ(sum.histograms.at("h").buckets[0], 1u);
  EXPECT_EQ(sum.histograms.at("h").buckets[1], 1u);
}

TEST(MetricsRegistry, ScenarioAdapterExposesRadioAndTransportStats) {
  wl::GridSetup setup;
  setup.nx = setup.ny = 2;
  wl::Grid grid = wl::make_grid(setup, 1);
  MetricsRegistry registry;
  grid.scenario->register_metrics(registry);
  const MetricsSnapshot snap = registry.snapshot();
  // Medium stats and per-node transport stats appear under stable names.
  EXPECT_TRUE(snap.counters.contains("radio.frames_transmitted"));
  EXPECT_TRUE(snap.counters.contains("radio.bytes_transmitted"));
  EXPECT_TRUE(snap.counters.contains("node0.transport.messages_sent"));
  EXPECT_TRUE(snap.counters.contains("node3.transport.fragments_sent"));
  EXPECT_TRUE(
      snap.counters.contains("node0.transport.frames_dropped_overflow"));
}

TEST(SimClock, SimulatorRegistersClockAndScopedNodeNests) {
  EXPECT_EQ(current_sim_clock(), nullptr);
  EXPECT_EQ(current_log_node(), NodeId::invalid().value());
  {
    sim::Simulator outer(1);
    ASSERT_NE(current_sim_clock(), nullptr);
    EXPECT_EQ(*current_sim_clock(), SimTime::zero());
    {
      // A nested simulator (e.g. a sub-experiment) shadows, then restores.
      sim::Simulator inner(2);
      inner.schedule(SimTime::seconds(1.5), [] {
        EXPECT_DOUBLE_EQ(current_sim_clock()->as_seconds(), 1.5);
      });
      inner.run(SimTime::seconds(2.0));
    }
    ASSERT_NE(current_sim_clock(), nullptr);
    EXPECT_EQ(*current_sim_clock(), SimTime::zero());

    const ScopedLogNode a(NodeId(4));
    EXPECT_EQ(current_log_node(), 4u);
    {
      const ScopedLogNode b(NodeId(9));
      EXPECT_EQ(current_log_node(), 9u);
    }
    EXPECT_EQ(current_log_node(), 4u);
  }
  EXPECT_EQ(current_sim_clock(), nullptr);
}

TEST(Tracer, RingBufferDropsOldestAtCapacity) {
  Tracer tracer(2);
  tracer.instant(SimTime::micros(1), NodeId(0), "s", "a");
  tracer.instant(SimTime::micros(2), NodeId(0), "s", "b");
  tracer.instant(SimTime::micros(3), NodeId(0), "s", "c");
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_STREQ(tracer.events().front().name, "b");
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, NdjsonIsExactAndTyped) {
  Tracer tracer;
  tracer.begin(SimTime::micros(1500), NodeId(7), "pdd", "round",
               {{"round", 1}, {"ratio", 0.5}, {"why", "test"}});
  EXPECT_EQ(tracer.ndjson(),
            "{\"t\":1500,\"node\":7,\"ph\":\"B\",\"sub\":\"pdd\","
            "\"ev\":\"round\",\"args\":{\"round\":1,\"ratio\":0.5,"
            "\"why\":\"test\"}}\n");
}

TEST(Tracer, ChromeTraceRendersPhasesAndTids) {
  Tracer tracer;
  tracer.begin(SimTime::micros(10), NodeId(3), "pdd", "round", {{"round", 1}});
  tracer.end(SimTime::micros(20), NodeId(3), "pdd", "round");
  tracer.instant(SimTime::micros(15), NodeId(4), "radio", "tx");
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"B\",\"ts\":10,\"pid\":0,\"tid\":3"),
            std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"E\",\"ts\":20"), std::string::npos);
  // Instants carry a scope field for chrome://tracing.
  EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
}

TEST(Tracer, MacroSkipsArgEvaluationWhenDetachedOrDisabled) {
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return std::int64_t{42};
  };
  Tracer* detached = nullptr;
  PDS_TRACE_INSTANT(detached, SimTime::zero(), NodeId(0), "s", "e",
                    {"v", expensive()});
  EXPECT_EQ(evaluations, 0);

  Tracer tracer;
  tracer.set_enabled(false);
  PDS_TRACE_INSTANT(&tracer, SimTime::zero(), NodeId(0), "s", "e",
                    {"v", expensive()});
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(tracer.events().empty());

  tracer.set_enabled(true);
  PDS_TRACE_INSTANT(&tracer, SimTime::zero(), NodeId(0), "s", "e",
                    {"v", expensive()});
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(tracer.events().size(), 1u);
}

TEST(Tracer, StringArgsAreEscaped) {
  Tracer tracer;
  tracer.instant(SimTime::zero(), NodeId(0), "s", "e",
                 {{"text", "a\"b\\c\nd"}});
  EXPECT_NE(tracer.ndjson().find("\"text\":\"a\\\"b\\\\c\\nd\""),
            std::string::npos);
}

TEST(TraceReader, ParsesWriterOutputExactly) {
  Tracer tracer;
  tracer.instant(SimTime::micros(250), NodeId(9), "transport", "retransmit",
                 {{"round", 2}, {"awaiting", std::uint64_t{3}}});
  std::istringstream in(tracer.ndjson());
  std::size_t bad_line = 0;
  const auto events = tools::read_trace(in, bad_line);
  EXPECT_EQ(bad_line, 0u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t_us, 250);
  EXPECT_EQ(events[0].node, 9u);
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_EQ(events[0].sub, "transport");
  EXPECT_EQ(events[0].ev, "retransmit");
  EXPECT_DOUBLE_EQ(events[0].num("round"), 2.0);
  EXPECT_DOUBLE_EQ(events[0].num("awaiting"), 3.0);
  EXPECT_EQ(events[0].arg("missing"), nullptr);
}

TEST(TraceReader, RejectsMalformedLines) {
  std::istringstream in(
      "{\"t\":1,\"node\":0,\"ph\":\"i\",\"sub\":\"s\",\"ev\":\"e\","
      "\"args\":{}}\nnot json\n");
  std::size_t bad_line = 0;
  const auto events = tools::read_trace(in, bad_line);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_EQ(bad_line, 2u);
}

TEST(TimeSeries, CommitsOneRowPerBoundaryAndSkipsStale) {
  TimeSeries ts(SimTime::millis(10));
  const int col = ts.column("test.value");
  int fired = 0;
  ts.set_collector([&](SimTime now, TimeSeries& out) {
    ++fired;
    out.set(col, static_cast<double>(now.as_micros()));
  });
  ts.advance_to(SimTime::millis(5));  // before the first boundary
  EXPECT_EQ(ts.row_count(), 0u);
  ts.advance_to(SimTime::millis(35));  // crosses 10, 20, 30 ms
  EXPECT_EQ(ts.row_count(), 3u);
  EXPECT_EQ(fired, 3);
  ts.advance_to(SimTime::millis(20));  // non-monotone: no new boundary
  EXPECT_EQ(ts.row_count(), 3u);
  EXPECT_EQ(ts.row_time(0), SimTime::millis(10));
  EXPECT_EQ(ts.row_time(2), SimTime::millis(30));
  // The collector sees the boundary time, not the caller's clock.
  EXPECT_DOUBLE_EQ(ts.value(1, col), 20'000.0);
}

TEST(TimeSeries, ColumnRegistrationIsIdempotentAndOrdered) {
  TimeSeries ts(SimTime::seconds(1.0));
  const int a = ts.column("a", TimeSeries::Kind::kSim);
  const int b = ts.column("b", TimeSeries::Kind::kWall);
  EXPECT_EQ(ts.column("a"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(ts.column_count(), 2u);
  EXPECT_STREQ(ts.column_name(a), "a");
  EXPECT_EQ(ts.column_kind(b), TimeSeries::Kind::kWall);
}

TEST(TimeSeries, NdjsonDropsWallColumnsFromDeterministicProjection) {
  TimeSeries ts(SimTime::seconds(1.0));
  const int sim_col = ts.column("sim.col", TimeSeries::Kind::kSim);
  const int wall_col = ts.column("wall.col", TimeSeries::Kind::kWall);
  ts.set_collector([&](SimTime, TimeSeries& out) {
    out.set(sim_col, 7.0);
    out.set(wall_col, 9.0);
  });
  ts.advance_to(SimTime::seconds(2.0));

  std::string error;
  const auto full = tools::parse_timeseries(ts.ndjson(true), &error);
  ASSERT_TRUE(full.has_value()) << error;
  ASSERT_EQ(full->columns.size(), 2u);
  EXPECT_EQ(full->columns[1].kind, "wall");
  ASSERT_EQ(full->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(full->rows[0].v[1], 9.0);

  const auto sim_only = tools::parse_timeseries(ts.ndjson(false), &error);
  ASSERT_TRUE(sim_only.has_value()) << error;
  ASSERT_EQ(sim_only->columns.size(), 1u);
  EXPECT_EQ(sim_only->columns[0].name, "sim.col");
  ASSERT_EQ(sim_only->rows.size(), 2u);
  ASSERT_EQ(sim_only->rows[0].v.size(), 1u);
  EXPECT_DOUBLE_EQ(sim_only->rows[0].v[0], 7.0);
}

TEST(TimeSeries, ResetKeepsColumnsAndCollector) {
  TimeSeries ts(SimTime::seconds(1.0));
  const int col = ts.column("test.value");
  ts.set_collector(
      [&](SimTime, TimeSeries& out) { out.set(col, 1.0); });
  ts.advance_to(SimTime::seconds(3.0));
  EXPECT_EQ(ts.row_count(), 3u);
  ts.reset();
  EXPECT_EQ(ts.row_count(), 0u);
  EXPECT_EQ(ts.column_count(), 1u);
  ts.advance_to(SimTime::seconds(1.0));
  ASSERT_EQ(ts.row_count(), 1u);  // collector survived the reset
  EXPECT_DOUBLE_EQ(ts.value(0, col), 1.0);
}

TEST(Profiler, NestedScopesBuildPathsAndCountCalls) {
  Profiler prof;
  for (int i = 0; i < 3; ++i) {
    PDS_PROF_SCOPE(&prof, "sim");
    {
      PDS_PROF_SCOPE(&prof, "radio");
    }
  }
  const auto entries = prof.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  // Sorted by path: "sim" then "sim/radio".
  EXPECT_EQ(entries[0].path, "sim");
  EXPECT_EQ(entries[0].depth, 0);
  EXPECT_EQ(entries[0].calls, 3u);
  EXPECT_EQ(entries[1].path, "sim/radio");
  EXPECT_EQ(entries[1].depth, 1);
  EXPECT_EQ(entries[1].calls, 3u);
  EXPECT_GE(entries[0].ns, entries[1].ns);
}

TEST(Profiler, DisabledAndDetachedScopesAreInert) {
  Profiler prof;
  prof.set_enabled(false);
  {
    PDS_PROF_SCOPE(&prof, "sim");
  }
  EXPECT_TRUE(prof.snapshot().empty());
  Profiler* null_prof = nullptr;
  {
    PDS_PROF_SCOPE(null_prof, "sim");  // must not crash
  }
}

TEST(Profiler, MergeSnapshotsFoldsByPath) {
  Profiler a;
  Profiler b;
  {
    PDS_PROF_SCOPE(&a, "sim");
  }
  {
    PDS_PROF_SCOPE(&b, "sim");
    PDS_PROF_SCOPE(&b, "radio");
  }
  const auto merged = Profiler::merge_snapshots({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].path, "sim");
  EXPECT_EQ(merged[0].calls, 2u);
  EXPECT_EQ(merged[1].path, "sim/radio");
  EXPECT_EQ(merged[1].calls, 1u);
}

TEST(Profiler, ConcurrentScopesOnSharedProfilerStayConsistent) {
  Profiler prof;
  std::vector<std::thread> pool;
  for (int w = 0; w < 4; ++w) {
    pool.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        PDS_PROF_SCOPE(&prof, "sim");
        PDS_PROF_SCOPE(&prof, "transport");
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const auto entries = prof.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].path, "sim");
  EXPECT_EQ(entries[0].calls, 4000u);
  EXPECT_EQ(entries[1].path, "sim/transport");
  EXPECT_EQ(entries[1].calls, 4000u);
}

TEST(Profiler, ProfileJsonLineRoundTripsThroughStatsAnalysis) {
  Profiler prof;
  {
    PDS_PROF_SCOPE(&prof, "sim");
    PDS_PROF_SCOPE(&prof, "pdd");
  }
  // A profile line is valid only appended to a series body.
  TimeSeries ts(SimTime::seconds(1.0));
  ts.column("test.value");
  ts.advance_to(SimTime::seconds(1.0));
  const std::string text =
      ts.ndjson() + Profiler::profile_json_line(prof.snapshot());
  std::string error;
  const auto parsed = tools::parse_timeseries(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->profile.size(), 2u);
  EXPECT_EQ(parsed->profile[0].path, "sim");
  EXPECT_EQ(parsed->profile[0].depth, 0);
  EXPECT_EQ(parsed->profile[0].calls, 1u);
  EXPECT_EQ(parsed->profile[1].path, "sim/pdd");
  EXPECT_EQ(parsed->profile[1].depth, 1);
  EXPECT_GE(parsed->profile[0].ns, parsed->profile[1].ns);
}

// Satellite: common/arena.h pool accounting. High-water marks and reuse
// counts must round-trip through a sampler column and survive pool reset —
// the flight recorder reads these live during a run.
TEST(PoolStats, VectorPoolAccountingRoundTripsThroughSampler) {
  VectorPool<std::uint32_t> pool;
  std::vector<std::uint32_t> a = pool.acquire();  // miss: pool empty
  a.push_back(1);
  std::vector<std::uint32_t> b = pool.acquire();  // miss
  b.push_back(2);
  pool.release(std::move(a));
  pool.release(std::move(b));
  EXPECT_EQ(pool.parked(), 2u);
  EXPECT_EQ(pool.stats().high_water, 2u);
  std::vector<std::uint32_t> c = pool.acquire();  // hit
  EXPECT_EQ(pool.stats().reuses, 1u);
  pool.release(std::move(c));

  TimeSeries ts(SimTime::seconds(1.0));
  const int parked = ts.column("arena.rx_pool_parked");
  const int reuses = ts.column("test.value");
  ts.set_collector([&](SimTime, TimeSeries& out) {
    out.set(parked, static_cast<double>(pool.parked()));
    out.set(reuses, static_cast<double>(pool.stats().reuses));
  });
  ts.advance_to(SimTime::seconds(1.0));
  ASSERT_EQ(ts.row_count(), 1u);
  EXPECT_DOUBLE_EQ(ts.value(0, parked), 2.0);
  EXPECT_DOUBLE_EQ(ts.value(0, reuses), 1.0);

  // reset() frees parked buffers but preserves lifetime stats.
  pool.reset();
  EXPECT_EQ(pool.parked(), 0u);
  EXPECT_EQ(pool.stats().high_water, 2u);
  EXPECT_EQ(pool.stats().reuses, 1u);
  ts.advance_to(SimTime::seconds(2.0));
  ASSERT_EQ(ts.row_count(), 2u);
  EXPECT_DOUBLE_EQ(ts.value(1, parked), 0.0);
  EXPECT_DOUBLE_EQ(ts.value(1, reuses), 1.0);
}

TEST(PoolStats, BlockPoolTracksParkedBytesHighWaterAndReuse) {
  // BlockPool is a thread-local singleton; run on a fresh thread so no other
  // test's allocations pollute the accounting.
  std::thread([] {
    BlockPool& pool = BlockPool::local();
    void* p1 = pool.allocate(256);
    void* p2 = pool.allocate(1024);
    ASSERT_NE(p1, nullptr);
    ASSERT_NE(p2, nullptr);
    EXPECT_EQ(pool.parked_bytes(), 0u);
    pool.deallocate(p1, 256);
    pool.deallocate(p2, 1024);
    EXPECT_EQ(pool.parked_bytes(), 1280u);
    EXPECT_EQ(pool.stats().high_water, 1280u);

    void* p3 = pool.allocate(256);  // served from the free list
    EXPECT_EQ(pool.stats().reuses, 1u);
    EXPECT_EQ(pool.parked_bytes(), 1024u);
    pool.deallocate(p3, 256);

    TimeSeries ts(SimTime::seconds(1.0));
    const int bytes = ts.column("arena.block_pool_bytes",
                                TimeSeries::Kind::kWall);
    ts.set_collector([&](SimTime, TimeSeries& out) {
      out.set(bytes, static_cast<double>(pool.parked_bytes()));
    });
    ts.advance_to(SimTime::seconds(1.0));
    ASSERT_EQ(ts.row_count(), 1u);
    EXPECT_DOUBLE_EQ(ts.value(0, bytes), 1280.0);

    pool.release_all();
    EXPECT_EQ(pool.parked_bytes(), 0u);
    EXPECT_EQ(pool.stats().high_water, 1280u);  // lifetime stats survive
    EXPECT_EQ(pool.stats().reuses, 1u);
    EXPECT_EQ(pool.stats().acquires, 3u);
  }).join();
}

}  // namespace
}  // namespace pds::obs
