// Differential interop tests for the v2 wire extensions (DESIGN.md §16):
// populations mixing classic-codec and v2-codec nodes in the same simulation
// must reach the same discovery and retrieval outcomes as a uniform classic
// population. The extensions are negotiation-free — every codec *decodes*
// all extensions, config only gates what a node *emits* — so a v2 consumer
// behind classic relays (and vice versa) must lose nothing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "workload/experiment.h"

namespace pds::wl {
namespace {

core::PdsConfig v2_config() {
  core::PdsConfig pds;
  pds.wire.delta_bloom = true;
  pds.wire.compress_entries = true;
  pds.wire.chunk_bitmap = true;
  return pds;
}

// Discovered-entry count of the first consumer (recall is reported as a
// fraction; the underlying count is exact).
std::size_t discovered(const PddOutcome& out, std::size_t entries) {
  EXPECT_FALSE(out.per_consumer_recall.empty());
  return static_cast<std::size_t>(std::lround(
      out.per_consumer_recall.front() * static_cast<double>(entries)));
}

class WirePddInterop : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WirePddInterop, MixedPopulationsMatchClassicDiscovery) {
  constexpr std::size_t kEntries = 800;
  const auto run = [&](const char* label,
                       std::function<void(NodeId, core::PdsConfig&)> hook) {
    PddGridParams p;
    p.nx = p.ny = 7;
    p.metadata_count = kEntries;
    p.seed = GetParam();
    p.node_config = std::move(hook);
    const PddOutcome out = run_pdd_grid(p);
    EXPECT_TRUE(out.all_finished) << label;
    return out;
  };

  const PddOutcome classic = run("all-classic", nullptr);
  const PddOutcome v2 = run("all-v2", [](NodeId, core::PdsConfig& pds) {
    pds = v2_config();
  });
  // Checkerboard: every other node emits v2 frames, so delta queries cross
  // classic relays and classic queries cross v2 relays on every path.
  const PddOutcome mixed =
      run("checkerboard", [](NodeId id, core::PdsConfig& pds) {
        if (id.value() % 2 == 0) pds = v2_config();
      });
  // The asymmetric corner: only the consumer (center of the 7x7 grid,
  // id 24) speaks v2; every relay and producer is classic.
  const PddOutcome lone_v2 =
      run("lone-v2-consumer", [](NodeId id, core::PdsConfig& pds) {
        if (id.value() == 24) pds = v2_config();
      });

  const std::size_t base = discovered(classic, kEntries);
  EXPECT_EQ(base, kEntries) << "classic baseline must reach full recall";
  EXPECT_EQ(discovered(v2, kEntries), base);
  EXPECT_EQ(discovered(mixed, kEntries), base);
  EXPECT_EQ(discovered(lone_v2, kEntries), base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WirePddInterop,
                         ::testing::Values(11, 12, 13));

class WirePdrInterop : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WirePdrInterop, MixedPopulationsMatchClassicRetrieval) {
  const auto run = [&](const char* label,
                       std::function<void(NodeId, core::PdsConfig&)> hook) {
    RetrievalGridParams p;
    p.nx = p.ny = 7;
    p.item_size_bytes = 2u * 1024 * 1024;  // 8 chunks of 256 KB
    p.redundancy = 2;
    p.seed = GetParam();
    p.node_config = std::move(hook);
    const RetrievalOutcome out = run_retrieval_grid(p);
    EXPECT_TRUE(out.all_complete) << label;
    EXPECT_DOUBLE_EQ(out.recall, 1.0) << label;
    return out;
  };

  (void)run("all-classic", nullptr);
  (void)run("all-v2",
            [](NodeId, core::PdsConfig& pds) { pds = v2_config(); });
  (void)run("checkerboard", [](NodeId id, core::PdsConfig& pds) {
    if (id.value() % 2 == 0) pds = v2_config();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, WirePdrInterop, ::testing::Values(21, 22));

// Adaptive round spacing composes with the v2 wire and is recall-neutral.
TEST(WireInterop, AdaptiveSpacingKeepsFullRecall) {
  PddGridParams p;
  p.nx = p.ny = 7;
  p.metadata_count = 800;
  p.seed = 31;
  p.pds = v2_config();
  p.pds.adaptive_round_spacing = true;
  const PddOutcome out = run_pdd_grid(p);
  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.999);
}

}  // namespace
}  // namespace pds::wl
