// Determinism and correctness of the RadioMedium spatial hash grid.
//
// The grid is a pure indexing optimization: with the same seed, a scenario
// driven through the grid path must produce bit-identical MediumStats and
// delivery traces to the brute-force full-scan reference
// (RadioConfig::use_spatial_grid = false), and grid neighbors() must equal
// brute-force distance filtering under arbitrary mobility.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "sim/faults.h"
#include "sim/radio.h"
#include "sim/simulator.h"

namespace pds::sim {
namespace {

// Records every delivered frame with receiver, sender and arrival time.
struct TraceSink : FrameSink {
  Simulator* sim = nullptr;
  NodeId self;
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::size_t,
                         std::int64_t>>* trace = nullptr;

  void on_frame(const Frame& frame) override {
    trace->emplace_back(self.value(), frame.sender.value(), frame.size_bytes,
                        sim->now().as_micros());
  }
};

using Trace = std::vector<
    std::tuple<std::uint32_t, std::uint32_t, std::size_t, std::int64_t>>;

// Drives a contended 6×6 grid with saturating broadcast traffic, mid-run
// mobility (including cell-crossing moves) and a join/leave, and returns the
// final stats plus the full delivery trace.
std::pair<MediumStats, Trace> run_contended(bool use_grid,
                                            std::uint64_t seed) {
  Simulator sim(seed);
  RadioConfig cfg = contended_radio_profile();
  cfg.use_spatial_grid = use_grid;
  RadioMedium medium(sim, cfg);

  constexpr std::size_t kSide = 6;
  constexpr std::size_t kNodes = kSide * kSide;
  const double spacing = 12.0;

  Trace trace;
  std::vector<TraceSink> sinks(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    sinks[i].sim = &sim;
    sinks[i].self = NodeId(static_cast<std::uint32_t>(i));
    sinks[i].trace = &trace;
    medium.add_node(sinks[i].self,
                    sinks[i],
                    Vec2{static_cast<double>(i % kSide) * spacing,
                         static_cast<double>(i / kSide) * spacing});
  }

  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    for (int k = 0; k < 12; ++k) {
      sim.schedule_at(SimTime::millis(3 * k) +
                          SimTime::micros(static_cast<std::int64_t>(i) * 11),
                      [&medium, id] {
                        medium.send(id,
                                    Frame{.sender = id, .size_bytes = 900,
                                          .control = false, .payload = {}});
                      });
    }
  }
  // Mobility: node 7 sweeps across several grid cells; node 20 jitters
  // within its cell; node 13 leaves and rejoins elsewhere.
  for (int step = 1; step <= 8; ++step) {
    sim.schedule_at(SimTime::millis(5 * step), [&medium, step] {
      medium.set_position(NodeId(7),
                          Vec2{6.0 * static_cast<double>(step), 12.0});
    });
    sim.schedule_at(SimTime::millis(5 * step + 2), [&medium, step] {
      medium.set_position(NodeId(20),
                          Vec2{24.0 + 0.5 * static_cast<double>(step), 36.0});
    });
  }
  sim.schedule_at(SimTime::millis(11),
                  [&medium] { medium.set_enabled(NodeId(13), false); });
  sim.schedule_at(SimTime::millis(29), [&medium] {
    medium.set_position(NodeId(13), Vec2{60.0, 60.0});
    medium.set_enabled(NodeId(13), true);
  });

  sim.run(SimTime::seconds(10.0));
  return {medium.stats(), trace};
}

TEST(RadioGrid, GridPathBitIdenticalToBruteForce) {
  for (const std::uint64_t seed : {1u, 2u, 7u}) {
    const auto [grid_stats, grid_trace] = run_contended(true, seed);
    const auto [brute_stats, brute_trace] = run_contended(false, seed);
    EXPECT_EQ(grid_stats, brute_stats) << "seed " << seed;
    EXPECT_EQ(grid_trace, brute_trace) << "seed " << seed;
    EXPECT_GT(grid_stats.deliveries, 0u);
    EXPECT_GT(grid_stats.losses_collision, 0u)
        << "scenario should actually be contended";
  }
}

// Same contended workload, now with a fault schedule on top: a partition
// that heals mid-run, a lossy link override, burst channels and a buffer
// storm. Fault channels draw from the medium's RNG (sub-unity losses and
// burst chains) — the grid and brute-force paths must consume those draws
// in exactly the same order.
std::pair<MediumStats, Trace> run_faulted(bool use_grid, std::uint64_t seed) {
  Simulator sim(seed);
  RadioConfig cfg = contended_radio_profile();
  cfg.use_spatial_grid = use_grid;
  RadioMedium medium(sim, cfg);

  constexpr std::size_t kSide = 6;
  constexpr std::size_t kNodes = kSide * kSide;
  const double spacing = 12.0;

  Trace trace;
  std::vector<TraceSink> sinks(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    sinks[i].sim = &sim;
    sinks[i].self = NodeId(static_cast<std::uint32_t>(i));
    sinks[i].trace = &trace;
    medium.add_node(sinks[i].self,
                    sinks[i],
                    Vec2{static_cast<double>(i % kSide) * spacing,
                         static_cast<double>(i / kSide) * spacing});
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    for (int k = 0; k < 12; ++k) {
      sim.schedule_at(SimTime::millis(3 * k) +
                          SimTime::micros(static_cast<std::int64_t>(i) * 11),
                      [&medium, id] {
                        medium.send(id,
                                    Frame{.sender = id, .size_bytes = 900,
                                          .control = false, .payload = {}});
                      });
    }
  }

  FaultInjector injector(sim, medium);
  FaultSchedule schedule;
  std::vector<NodeId> left;
  std::vector<NodeId> right;
  for (std::size_t i = 0; i < kNodes; ++i) {
    (i % kSide < kSide / 2 ? left : right)
        .push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  schedule.partition(SimTime::millis(4), SimTime::millis(22), left, right)
      .link_loss(SimTime::millis(2), NodeId(0), NodeId(1), 0.4)
      .burst(SimTime::millis(1), SimTime::millis(30), NodeId(8))
      .burst(SimTime::millis(1), SimTime::millis(30), NodeId(27))
      .churn(SimTime::millis(9), SimTime::millis(25), NodeId(14))
      .buffer_storm(SimTime::millis(6), NodeId(21), 60'000, 1200);
  injector.install(schedule);

  sim.run(SimTime::seconds(10.0));
  return {medium.stats(), trace};
}

TEST(RadioGrid, FaultScheduleBitIdenticalAcrossGridAndBruteForce) {
  for (const std::uint64_t seed : {1u, 5u, 11u}) {
    const auto [grid_stats, grid_trace] = run_faulted(true, seed);
    const auto [brute_stats, brute_trace] = run_faulted(false, seed);
    EXPECT_EQ(grid_stats, brute_stats) << "seed " << seed;
    EXPECT_EQ(grid_trace, brute_trace) << "seed " << seed;
    EXPECT_GT(grid_stats.losses_fault, 0u)
        << "partition/link overrides should actually drop frames";
    EXPECT_GT(grid_stats.losses_burst, 0u)
        << "burst channels should actually drop frames";
  }
}

TEST(RadioGrid, SameSeedSameStatsAcrossRuns) {
  const auto [a_stats, a_trace] = run_contended(true, 3);
  const auto [b_stats, b_trace] = run_contended(true, 3);
  EXPECT_EQ(a_stats, b_stats);
  EXPECT_EQ(a_trace, b_trace);
}

struct NullSink : FrameSink {
  void on_frame(const Frame&) override {}
};

// Property: grid neighbors() == brute-force distance filtering, under random
// placement, random mobility updates and random enable/disable toggles.
TEST(RadioGrid, NeighborsMatchBruteForceUnderRandomMobility) {
  Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    Simulator sim(static_cast<std::uint64_t>(round + 1));
    RadioConfig cfg;
    cfg.range_m = rng.uniform(5.0, 40.0);
    RadioMedium medium(sim, cfg);

    const std::size_t n = 40;
    NullSink sink;
    std::vector<Vec2> pos(n);
    std::vector<bool> enabled(n, true);
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = Vec2{rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)};
      medium.add_node(NodeId(static_cast<std::uint32_t>(i)), sink, pos[i]);
    }

    for (int update = 0; update < 60; ++update) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (rng.bernoulli(0.15)) {
        enabled[i] = !enabled[i];
        medium.set_enabled(NodeId(static_cast<std::uint32_t>(i)), enabled[i]);
      } else {
        pos[i] = Vec2{rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)};
        medium.set_position(NodeId(static_cast<std::uint32_t>(i)), pos[i]);
      }

      for (std::size_t q = 0; q < n; ++q) {
        std::vector<NodeId> expected;
        if (enabled[q]) {
          for (std::size_t o = 0; o < n; ++o) {
            if (o != q && enabled[o] &&
                distance(pos[q], pos[o]) <= cfg.range_m) {
              expected.push_back(NodeId(static_cast<std::uint32_t>(o)));
            }
          }
        }
        EXPECT_EQ(medium.neighbors(NodeId(static_cast<std::uint32_t>(q))),
                  expected)
            << "round " << round << " update " << update << " node " << q;
      }
    }
  }
}

// Positions straddling cell boundaries and negative coordinates must hash to
// distinct cells without losing anyone.
TEST(RadioGrid, NegativeAndBoundaryCoordinates) {
  Simulator sim(1);
  RadioConfig cfg;
  cfg.range_m = 10.0;
  RadioMedium medium(sim, cfg);
  NullSink sink;
  medium.add_node(NodeId(0), sink, Vec2{0.0, 0.0});
  medium.add_node(NodeId(1), sink, Vec2{-0.5, -0.5});
  medium.add_node(NodeId(2), sink, Vec2{-14.9, 0.0});
  medium.add_node(NodeId(3), sink, Vec2{15.0, 0.0});
  medium.add_node(NodeId(4), sink, Vec2{100.0, -100.0});

  EXPECT_EQ(medium.neighbors(NodeId(0)),
            (std::vector<NodeId>{NodeId(1)}));
  medium.set_position(NodeId(4), Vec2{-5.0, 5.0});
  EXPECT_EQ(medium.neighbors(NodeId(0)),
            (std::vector<NodeId>{NodeId(1), NodeId(4)}));
  medium.set_position(NodeId(4), Vec2{-300.0, 300.0});
  EXPECT_EQ(medium.neighbors(NodeId(0)),
            (std::vector<NodeId>{NodeId(1)}));
}

TEST(RadioGrid, DisabledQuerierHasNoNeighbors) {
  Simulator sim(1);
  RadioMedium medium(sim, RadioConfig{});
  NullSink sink;
  medium.add_node(NodeId(0), sink, Vec2{0.0, 0.0});
  medium.add_node(NodeId(1), sink, Vec2{1.0, 0.0});
  medium.set_enabled(NodeId(0), false);
  EXPECT_TRUE(medium.neighbors(NodeId(0)).empty());
  EXPECT_EQ(medium.neighbors(NodeId(1)), std::vector<NodeId>{});
  medium.set_enabled(NodeId(0), true);
  EXPECT_EQ(medium.neighbors(NodeId(1)), std::vector<NodeId>{NodeId(0)});
}

}  // namespace
}  // namespace pds::sim
