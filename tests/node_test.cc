// PdsNode facade tests: concurrent sessions, the discover→retrieve
// pipeline, per-node heterogeneous configuration, and table housekeeping.
#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds::core {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

std::unique_ptr<wl::Scenario> make_line(std::size_t n, const PdsConfig& pds,
                                        std::uint64_t seed = 1) {
  auto sc = std::make_unique<wl::Scenario>(seed, lossless_radio());
  for (std::size_t i = 0; i < n; ++i) {
    sc->add_node(NodeId(static_cast<std::uint32_t>(i)),
                 {static_cast<double>(i) * 10.0, 0.0}, pds);
  }
  return sc;
}

DataDescriptor entry(int seq, const char* type = "t") {
  DataDescriptor d;
  d.set(kAttrDataType, std::string(type));
  d.set("seq", std::int64_t{seq});
  return d;
}

TEST(PdsNode, DiscoverThenRetrievePipeline) {
  PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  auto sc = make_line(4, pds);
  const auto item = wl::make_chunked_item("doc", 4 * 64 * 1024, 64 * 1024);
  for (ChunkIndex c = 0; c < 4; ++c) {
    sc->node(NodeId(3)).publish_chunk(
        item, wl::make_chunk(item, c, 4 * 64 * 1024, 64 * 1024));
  }

  // The consumer discovers the item's metadata first, reconstructs the item
  // descriptor from a chunk entry, and retrieves it — the full paper
  // workflow end to end.
  bool retrieved = false;
  sc->node(NodeId(0)).discover(
      Filter{}, [&](const DiscoverySession::Result&) {
        auto& consumer = sc->node(NodeId(0));
        // Any discovered chunk entry identifies the parent item.
        DataDescriptor found;
        for (const DataDescriptor& d : consumer.store().match_metadata(
                 Filter{}, sc->sim().now())) {
          if (d.is_chunk()) {
            found = d.item_descriptor();
            break;
          }
        }
        ASSERT_TRUE(found.total_chunks().has_value());
        consumer.retrieve(found, [&](const RetrievalResult& r) {
          retrieved = r.complete;
        });
      });
  sc->run_until(SimTime::seconds(120));
  EXPECT_TRUE(retrieved);
}

TEST(PdsNode, ConcurrentSessionsOfDifferentKinds) {
  PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  auto sc = make_line(4, pds);
  auto& producer = sc->node(NodeId(3));
  for (int i = 0; i < 10; ++i) producer.publish_metadata(entry(i));
  net::ItemPayload item_payload;
  item_payload.descriptor = entry(100, "sample");
  item_payload.size_bytes = 64;
  producer.publish_item(item_payload);
  const auto big = wl::make_chunked_item("big", 2 * 64 * 1024, 64 * 1024);
  for (ChunkIndex c = 0; c < 2; ++c) {
    producer.publish_chunk(big,
                           wl::make_chunk(big, c, 2 * 64 * 1024, 64 * 1024));
  }

  auto& consumer = sc->node(NodeId(0));
  int done = 0;
  std::size_t discovered = 0;
  consumer.discover(Filter{}, [&](const DiscoverySession::Result& r) {
    discovered = r.distinct_received;
    ++done;
  });
  std::size_t items = 0;
  Filter item_filter;
  item_filter.where(std::string(kAttrDataType), Relation::kEq,
                    std::string("sample"));
  consumer.collect_items(item_filter, [&](const DiscoverySession::Result& r) {
    items = r.distinct_received;
    ++done;
  });
  bool got_big = false;
  consumer.retrieve(big, [&](const RetrievalResult& r) {
    got_big = r.complete;
    ++done;
  });

  sc->run_until(SimTime::seconds(120));
  EXPECT_EQ(done, 3);
  // 10 samples + 1 item entry + 2 chunk entries + 1 item-level entry.
  EXPECT_GE(discovered, 13u);
  EXPECT_EQ(items, 1u);
  EXPECT_TRUE(got_big);
}

TEST(PdsNode, HeterogeneousConfigsPerNode) {
  // One node runs with overhearing disabled while the rest cache: nodes own
  // their config copies.
  PdsConfig caching;
  PdsConfig deaf = caching;
  deaf.enable_overhearing_cache = false;

  auto sc = std::make_unique<wl::Scenario>(2, lossless_radio());
  sc->add_node(NodeId(0), {0, 0}, caching);
  sc->add_node(NodeId(1), {10, 0}, caching);
  sc->add_node(NodeId(2), {5, 8}, caching);
  sc->add_node(NodeId(3), {5, -8}, deaf);
  sc->node(NodeId(1)).publish_metadata(entry(1));

  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_TRUE(sc->node(NodeId(2)).store().has_metadata(entry(1).entry_key(),
                                                       sc->sim().now()));
  EXPECT_FALSE(sc->node(NodeId(3)).store().has_metadata(entry(1).entry_key(),
                                                        sc->sim().now()));
}

TEST(PdsNode, LqtSweepEventuallyDropsExpiredQueries) {
  PdsConfig pds;
  pds.query_lifetime = SimTime::seconds(2.0);
  auto sc = make_line(2, pds);
  auto& producer = sc->node(NodeId(1));
  for (int i = 0; i < 50; ++i) producer.publish_metadata(entry(i));

  sc->node(NodeId(0)).discover(Filter{},
                               [](const DiscoverySession::Result&) {});
  sc->run_until(SimTime::seconds(30));
  const std::size_t before = producer.lqt().size();

  // Enough later traffic triggers the amortized sweep (every ~512 handled
  // messages) and the expired lingering queries disappear.
  for (int burst = 0; burst < 20; ++burst) {
    sc->node(NodeId(0)).discover(Filter{},
                                 [](const DiscoverySession::Result&) {});
    sc->run_until(sc->sim().now() + SimTime::seconds(10));
  }
  producer.lqt().sweep(sc->sim().now());
  EXPECT_LT(producer.lqt().size(), before + 5);
}

TEST(PdsNode, PublishAfterDiscoveryIsVisibleToNextConsumer) {
  PdsConfig pds;
  auto sc = make_line(3, pds);
  sc->node(NodeId(2)).publish_metadata(entry(1));

  bool first = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 first = true;
                               });
  sc->run_until(SimTime::seconds(20));
  ASSERT_TRUE(first);

  sc->node(NodeId(2)).publish_metadata(entry(2));
  std::size_t got = 0;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result& r) {
                                 got = r.distinct_received;
                               });
  sc->run_until(SimTime::seconds(60));
  EXPECT_EQ(got, 2u);
}

}  // namespace
}  // namespace pds::core
