// Causal span-DAG tests (DESIGN.md §14): the single-hop harness emits a
// hand-computable golden span set, grid experiments must stitch into
// orphan-free DAGs with critical paths ending in a deliver, and the analyzed
// report must be byte-deterministic across RadioConfig::shard_threads and
// PDS_BENCH_JOBS worker counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/trace.h"
#include "tools/trace_causal.h"
#include "workload/experiment.h"

namespace pds::wl {
namespace {

std::vector<tools::ParsedEvent> parse(const obs::Tracer& tracer) {
  std::stringstream ss;
  tracer.write_ndjson(ss);
  std::size_t bad_line = 0;
  auto events = tools::read_trace(ss, bad_line);
  EXPECT_EQ(bad_line, 0u);
  return events;
}

const tools::ParsedEvent* find_causal(
    const std::vector<tools::ParsedEvent>& events, const std::string& ev) {
  for (const tools::ParsedEvent& e : events) {
    if (e.sub == "causal" && e.ev == ev) return &e;
  }
  return nullptr;
}

// NodeContext::new_span packing: (node+1)<<40 | per-node sequence.
constexpr std::uint64_t span_id(std::uint32_t node, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(node) + 1) << 40 | seq;
}

// -- Golden single-hop DAG ---------------------------------------------------
// One sender (node 1), one message, clean channel: the full span set is
// root -> tx at the sender, recv -> deliver at the receiver (node 0), with
// exactly one xmit frame attributed to the tx span.

TEST(CausalTrace, SingleHopGoldenSpans) {
  obs::Tracer tracer(0);
  SingleHopParams p;
  p.senders = 1;
  p.messages_per_sender = 1;
  p.mode = TransportMode::kLeakyBucket;
  p.tracer = &tracer;
  const SingleHopOutcome out = run_single_hop(p);
  EXPECT_EQ(out.reception, 1.0);

  const auto events = parse(tracer);
  const tools::ParsedEvent* root = find_causal(events, "root");
  const tools::ParsedEvent* tx = find_causal(events, "tx");
  const tools::ParsedEvent* recv = find_causal(events, "recv");
  const tools::ParsedEvent* deliver = find_causal(events, "deliver");
  const tools::ParsedEvent* xmit = find_causal(events, "xmit");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(tx, nullptr);
  ASSERT_NE(recv, nullptr);
  ASSERT_NE(deliver, nullptr);
  ASSERT_NE(xmit, nullptr);

  // Sender node 1: root is its first span, tx its second.
  EXPECT_EQ(root->node, 1u);
  EXPECT_EQ(tools::arg_u64(*root, "span"), span_id(1, 1));
  EXPECT_EQ(tx->node, 1u);
  EXPECT_EQ(tools::arg_u64(*tx, "span"), span_id(1, 2));
  EXPECT_EQ(tools::arg_u64(*tx, "parent"), span_id(1, 1));
  EXPECT_EQ(tools::arg_u64(*tx, "hop"), 0u);

  // Receiver node 0: recv links to the sender's tx span, deliver to recv.
  EXPECT_EQ(recv->node, 0u);
  EXPECT_EQ(tools::arg_u64(*recv, "span"), span_id(0, 1));
  EXPECT_EQ(tools::arg_u64(*recv, "parent"), span_id(1, 2));
  EXPECT_EQ(deliver->node, 0u);
  EXPECT_EQ(tools::arg_u64(*deliver, "span"), span_id(0, 2));
  EXPECT_EQ(tools::arg_u64(*deliver, "parent"), span_id(0, 1));

  // The frame on air is attributed to the tx span, first attempt.
  EXPECT_EQ(xmit->node, 1u);
  EXPECT_EQ(tools::arg_u64(*xmit, "span"), span_id(1, 2));
  EXPECT_EQ(tools::arg_u64(*xmit, "round"), 0u);
  EXPECT_EQ(tools::arg_u64(*xmit, "bytes"), 1500u);

  // Every event carries the same trace id: the sender's first response id.
  const std::uint64_t trace_id = tools::arg_u64(*root, "trace");
  EXPECT_NE(trace_id, 0u);
  for (const tools::ParsedEvent* e : {tx, recv, deliver, xmit}) {
    EXPECT_EQ(tools::arg_u64(*e, "trace"), trace_id);
  }
}

TEST(CausalTrace, SingleHopGoldenCriticalPath) {
  obs::Tracer tracer(0);
  SingleHopParams p;
  p.senders = 1;
  p.messages_per_sender = 1;
  p.mode = TransportMode::kLeakyBucket;
  p.tracer = &tracer;
  (void)run_single_hop(p);

  const tools::CausalReport report = tools::analyze_causal(parse(tracer));
  EXPECT_EQ(report.dropped_events, 0u);
  EXPECT_EQ(report.total_orphans, 0u);
  ASSERT_EQ(report.traces.size(), 1u);
  ASSERT_EQ(report.traces_with_path, 1u);

  const tools::TraceAnalysis& ta = report.traces[0];
  EXPECT_EQ(ta.kind, "singlehop");
  EXPECT_EQ(ta.spans.size(), 4u);
  EXPECT_EQ(ta.delivers, 1);
  EXPECT_EQ(ta.retx, 0);
  EXPECT_EQ(ta.bytes_on_air, 1500u);
  EXPECT_GT(ta.airtime_us, 0);

  // root -> tx -> recv -> deliver, with exactly one air hop.
  ASSERT_EQ(ta.critical_path.size(), 3u);
  EXPECT_EQ(ta.critical_path[0].from, span_id(1, 1));
  EXPECT_EQ(ta.critical_path[0].to, span_id(1, 2));
  EXPECT_EQ(ta.critical_path[1].from, span_id(1, 2));
  EXPECT_EQ(ta.critical_path[1].to, span_id(0, 1));
  EXPECT_EQ(ta.critical_path[1].cls, "air");
  EXPECT_EQ(ta.critical_path[2].from, span_id(0, 1));
  EXPECT_EQ(ta.critical_path[2].to, span_id(0, 2));
  EXPECT_EQ(ta.critical_path[2].cls, "deliver");
  EXPECT_EQ(ta.cp_air_hops, 1);
  EXPECT_GT(ta.cp_len_us, 0);
}

// -- Orphan freedom on the grid experiments ----------------------------------
// Every span's parent must appear in the same trace: the PDD flood, the
// lingering-query relay chain and the PDR/MDR retrieval paths all stitch
// into complete DAGs, and each completed session has a critical path.

TEST(CausalTrace, PddGridDagIsOrphanFree) {
  obs::Tracer tracer(0);
  PddGridParams p;
  p.nx = p.ny = 5;
  p.metadata_count = 400;
  p.consumers = 2;
  p.sequential = true;
  p.seed = 7;
  p.tracer = &tracer;
  (void)run_pdd_grid(p);

  const tools::CausalReport report = tools::analyze_causal(parse(tracer));
  EXPECT_EQ(report.dropped_events, 0u);
  EXPECT_EQ(report.total_orphans, 0u);
  EXPECT_EQ(report.traces.size(), 2u);  // one trace per consumer session
  EXPECT_EQ(report.traces_with_path, 2u);
  for (const tools::TraceAnalysis& ta : report.traces) {
    EXPECT_EQ(ta.kind, "pdd-metadata");
    EXPECT_GT(ta.delivers, 0);
    EXPECT_GT(ta.bytes_on_air, 0u);
    EXPECT_FALSE(ta.critical_path.empty());
    // The path must cross the air at least once: consumer and holders are
    // distinct nodes.
    EXPECT_GE(ta.cp_air_hops, 1);
  }
}

TEST(CausalTrace, RetrievalDagIsOrphanFreeForPdrAndMdr) {
  for (const RetrievalMethod method :
       {RetrievalMethod::kPdr, RetrievalMethod::kMdr}) {
    obs::Tracer tracer(0);
    RetrievalGridParams p;
    p.nx = p.ny = 4;
    p.item_size_bytes = 2u * 1024 * 1024;
    p.method = method;
    p.seed = 3;
    p.tracer = &tracer;
    const RetrievalOutcome out = run_retrieval_grid(p);
    EXPECT_GT(out.recall, 0.99);

    const tools::CausalReport report = tools::analyze_causal(parse(tracer));
    EXPECT_EQ(report.dropped_events, 0u);
    EXPECT_EQ(report.total_orphans, 0u)
        << (method == RetrievalMethod::kPdr ? "PDR" : "MDR");
    ASSERT_EQ(report.traces.size(), 1u);
    EXPECT_EQ(report.traces_with_path, 1u);
    const tools::TraceAnalysis& ta = report.traces[0];
    EXPECT_GT(ta.delivers, 0);
    EXPECT_GT(ta.bytes_on_air, 0u);
    EXPECT_GE(ta.cp_air_hops, 1);
  }
}

// -- Byte determinism of the analyzed report ---------------------------------
// The causal JSON is derived from the NDJSON stream, so any nondeterminism
// in analysis ordering (maps keyed by ids, not pointers) or in the sharded
// radio fan-out would show up here as byte drift.

std::string causal_json(std::uint64_t seed, int shard_threads) {
  obs::Tracer tracer(0);
  PddGridParams p;
  p.nx = p.ny = 5;
  p.metadata_count = 400;
  p.consumers = 2;
  p.sequential = true;
  p.seed = seed;
  p.tracer = &tracer;
  p.radio.shard_threads = shard_threads;
  p.radio.shard_min_candidates = 0;
  (void)run_pdd_grid(p);
  std::stringstream ss;
  tracer.write_ndjson(ss);
  std::size_t bad_line = 0;
  return tools::causal_report_json(tools::analyze_causal(
      tools::read_trace(ss, bad_line)));
}

TEST(CausalTrace, ReportBytesIdenticalAcrossShardThreadCounts) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const std::string one = causal_json(seed, 1);
    const std::string two = causal_json(seed, 2);
    const std::string eight = causal_json(seed, 8);
    EXPECT_FALSE(one.empty());
    EXPECT_NE(one.find("\"orphans\":0"), std::string::npos);
    EXPECT_EQ(one, two) << "seed " << seed;
    EXPECT_EQ(one, eight) << "seed " << seed;
  }
}

TEST(CausalTrace, ReportBytesIdenticalUnderParallelJobs) {
  ::setenv("PDS_BENCH_JOBS", "1", 1);
  const auto serial = bench::run_indexed(
      4, [](int i) { return causal_json(static_cast<std::uint64_t>(i + 1), 1); });
  ::setenv("PDS_BENCH_JOBS", "4", 1);
  const auto parallel = bench::run_indexed(
      4, [](int i) { return causal_json(static_cast<std::uint64_t>(i + 1), 1); });
  ::unsetenv("PDS_BENCH_JOBS");
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << i + 1;
  }
}

}  // namespace
}  // namespace pds::wl
