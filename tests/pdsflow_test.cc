// pdsflow engine tests: every rule family fires on a seeded fixture
// violation and stays quiet on the corrected form, taint flows through
// locals / arguments / returns and is erased by bounds comparisons,
// suppression comments round-trip (with the bad-suppression audit covering
// both tools' tags), baselines waive by fingerprint so line drift never
// invalidates them, and the JSON report is byte-deterministic and parses
// with the bench-report reader.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/flow_analysis.h"
#include "tools/report_reader.h"

namespace pds::flow {
namespace {

using lint::Finding;

// Analyzes one fixture under a src/-like path so the wire-taint and
// decode-atomicity families apply.
std::vector<Finding> run(const std::string& content,
                         const std::string& path = "src/net/fixture.cc",
                         const FlowOptions& opts = {}) {
  const FlowResult res = analyze({{path, content}}, opts);
  return res.findings;
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule,
               bool suppressed = false) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == rule && f.suppressed == suppressed;
      }));
}

// --- wire-taint ------------------------------------------------------------

TEST(PdsflowTaint, UnvalidatedWireCountBoundsLoop) {
  const auto fs = run(
      "void decode(ByteReader& r, std::vector<int>& out) {\n"
      "  const std::uint16_t n = r.get_u16();\n"
      "  for (std::uint16_t i = 0; i < n; ++i) out.push_back(1);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 1);
}

TEST(PdsflowTaint, BoundsComparisonSanitizes) {
  const auto fs = run(
      "void decode(ByteReader& r, std::vector<int>& out) {\n"
      "  const std::uint16_t n = r.get_u16();\n"
      "  if (std::size_t{n} * 4 > r.remaining()) {\n"
      "    throw DecodeError(\"count exceeds buffer\");\n"
      "  }\n"
      "  for (std::uint16_t i = 0; i < n; ++i) out.push_back(1);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 0);
}

TEST(PdsflowTaint, EnsureMacroSanitizes) {
  const auto fs = run(
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  const std::uint32_t n = r.get_u32();\n"
      "  PDS_ENSURE(n <= 64);\n"
      "  v.resize(n);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 0);
}

TEST(PdsflowTaint, TaintFlowsThroughLocalAssignment) {
  const auto fs = run(
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  const std::uint32_t n = r.get_u32();\n"
      "  const std::size_t count = n;\n"
      "  v.resize(count);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 1);
}

TEST(PdsflowTaint, StdMinMasksTaint) {
  const auto fs = run(
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  const std::uint32_t n = r.get_u32();\n"
      "  const std::size_t count = std::min<std::size_t>(n, 64);\n"
      "  v.resize(count);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 0);
}

TEST(PdsflowTaint, TaintedIndexAndNewArray) {
  const auto fs = run(
      "int pick(ByteReader& r, const std::vector<int>& v) {\n"
      "  const std::uint32_t idx = r.get_u32();\n"
      "  return v[idx];\n"
      "}\n"
      "char* grab(ByteReader& r) {\n"
      "  const std::uint32_t n = r.get_u32();\n"
      "  return new char[n];\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 2);
}

TEST(PdsflowTaint, InterproceduralSinkParameter) {
  // `fill` uses its parameter 0 as a resize size without validation, so a
  // wire-tainted argument at the call site is a finding.
  const auto fs = run(
      "void fill(std::size_t n, std::vector<int>& v) { v.resize(n); }\n"
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  const std::uint32_t n = r.get_u32();\n"
      "  fill(n, v);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 1);
}

TEST(PdsflowTaint, InterproceduralTaintedReturn) {
  const auto fs = run(
      "std::uint32_t read_count(ByteReader& r) { return r.get_u32(); }\n"
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  const std::uint32_t n = read_count(r);\n"
      "  v.resize(n);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 1);
}

TEST(PdsflowTaint, OutOfScopePathsAreExempt) {
  const auto fs = run(
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  v.resize(r.get_u32());\n"
      "  const std::uint16_t n = r.get_u16();\n"
      "  for (std::uint16_t i = 0; i < n; ++i) v.push_back(1);\n"
      "}\n",
      "tests/fixture.cc");
  EXPECT_EQ(count_rule(fs, "wire-taint"), 0);
}

// --- decode-atomicity ------------------------------------------------------

TEST(PdsflowAtomicity, MemberMutationBeforeThrowIsFlagged) {
  const auto fs = run(
      "struct Table {\n"
      "  void decode(ByteReader& r) {\n"
      "    names_.push_back(r.get_string());\n"
      "    if (r.get_u8() != 0) throw DecodeError(\"trailer\");\n"
      "  }\n"
      "  std::vector<std::string> names_;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "decode-atomicity"), 1);
}

TEST(PdsflowAtomicity, CopyThenSwapIsClean) {
  const auto fs = run(
      "struct Table {\n"
      "  void decode(ByteReader& r) {\n"
      "    std::vector<std::string> tmp;\n"
      "    tmp.push_back(r.get_string());\n"
      "    if (r.get_u8() != 0) throw DecodeError(\"trailer\");\n"
      "    names_ = std::move(tmp);\n"
      "  }\n"
      "  std::vector<std::string> names_;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "decode-atomicity"), 0);
}

TEST(PdsflowAtomicity, MutationInsideThrowingLoopIsFlagged) {
  const auto fs = run(
      "struct Table {\n"
      "  void decode(ByteReader& r, std::uint16_t n) {\n"
      "    if (n > 8) throw DecodeError(\"count\");\n"
      "    for (std::uint16_t i = 0; i < n; ++i) {\n"
      "      names_.push_back(r.get_string());\n"
      "    }\n"
      "  }\n"
      "  std::vector<std::string> names_;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "decode-atomicity"), 1);
}

TEST(PdsflowAtomicity, MutationThroughMemberReferenceAlias) {
  const auto fs = run(
      "struct Table {\n"
      "  void decode(ByteReader& r) {\n"
      "    std::string& slot = prev_[0];\n"
      "    slot = r.get_string();\n"
      "    if (r.get_u8() != 0) throw DecodeError(\"trailer\");\n"
      "  }\n"
      "  std::vector<std::string> prev_;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "decode-atomicity"), 1);
}

TEST(PdsflowAtomicity, BindingAConstReferenceIsNotAMutation) {
  const auto fs = run(
      "struct Table {\n"
      "  std::string decode(ByteReader& r) {\n"
      "    const std::string& name = names_[0];\n"
      "    if (r.get_u8() != 0) throw DecodeError(\"trailer\");\n"
      "    return name;\n"
      "  }\n"
      "  std::vector<std::string> names_;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "decode-atomicity"), 0);
}

TEST(PdsflowAtomicity, ConstructorsAreExempt) {
  const auto fs = run(
      "struct Frame {\n"
      "  explicit Frame(ByteReader& r) {\n"
      "    words_.push_back(r.get_u64());\n"
      "    if (r.get_u8() != 0) throw DecodeError(\"trailer\");\n"
      "  }\n"
      "  std::vector<std::uint64_t> words_;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "decode-atomicity"), 0);
}

// --- layering --------------------------------------------------------------

TEST(PdsflowLayering, LowerLayerIncludingHigherIsFlagged) {
  const auto fs = run("#include \"core/predicate.h\"\n", "src/net/fixture.h");
  ASSERT_EQ(count_rule(fs, "layering"), 1);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "layering";
  });
  EXPECT_EQ(it->fingerprint, "includes:core/predicate.h");
}

TEST(PdsflowLayering, DownwardAndSameLayerIncludesAreClean) {
  const auto fs = run(
      "#include \"common/bytes.h\"\n"
      "#include \"net/message.h\"\n"
      "#include \"util/stats.h\"\n",
      "src/core/fixture.h");
  EXPECT_EQ(count_rule(fs, "layering"), 0);
}

TEST(PdsflowLayering, AppliesOutsideSrcScopeToo) {
  const auto fs =
      run("#include \"core/predicate.h\"\n", "tools/fixture_tool.cc");
  EXPECT_EQ(count_rule(fs, "layering"), 0)
      << "tools may include anything below them";
  const auto low = run("#include \"sim/clock.h\"\n", "src/obs/fixture.h");
  EXPECT_EQ(count_rule(low, "layering"), 1);
}

TEST(PdsflowLayering, BaselineWaivesByFingerprintNotLine) {
  FlowOptions opts;
  opts.baseline = parse_baseline(
      "# comment line\n"
      "layering src/net/fixture.h includes:core/predicate.h\n");
  // Leading blank lines shift the include's line number; the fingerprint
  // match must still waive it.
  const auto fs =
      run("\n\n\n#include \"core/predicate.h\"\n", "src/net/fixture.h", opts);
  EXPECT_EQ(count_rule(fs, "layering", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "layering", /*suppressed=*/false), 0);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "layering";
  });
  EXPECT_TRUE(it->baselined);
}

TEST(PdsflowLayering, BaselineRoundTripsThroughRenderAndParse) {
  const auto fs = run("#include \"core/predicate.h\"\n", "src/net/fixture.h");
  const std::string text = render_baseline(fs);
  const auto entries = parse_baseline(text);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "layering");
  EXPECT_EQ(entries[0].file, "src/net/fixture.h");
  EXPECT_EQ(entries[0].fingerprint, "includes:core/predicate.h");
}

// --- suppressions ----------------------------------------------------------

TEST(PdsflowSuppression, AllowCommentSuppressesOnOffendingLine) {
  const auto fs = run(
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  v.resize(r.get_u32());  // pdsflow:allow(wire-taint)\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "wire-taint", /*suppressed=*/false), 0);
}

TEST(PdsflowSuppression, AllowFileCoversWholeFile) {
  const auto fs = run(
      "// pdsflow:allow-file(wire-taint)\n"
      "void decode(ByteReader& r, std::vector<int>& v) {\n"
      "  v.resize(r.get_u32());\n"
      "  std::vector<int> w;\n"
      "  w.resize(r.get_u32());\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wire-taint", /*suppressed=*/true), 2);
  EXPECT_EQ(count_rule(fs, "wire-taint", /*suppressed=*/false), 0);
}

TEST(PdsflowSuppression, UnknownRuleNameIsBadSuppression) {
  const auto fs = run("int x = 0;  // pdsflow:allow(no-such-rule)\n");
  EXPECT_EQ(count_rule(fs, "bad-suppression"), 1);
}

TEST(PdsflowSuppression, AuditsPdslintTagsToo) {
  // The multi-tool audit: a typo in the *other* linter's tag still fails
  // loudly no matter which tool scans the file first.
  const auto fs = run("int x = 0;  // pdslint:allow(no-such-rule)\n");
  EXPECT_EQ(count_rule(fs, "bad-suppression"), 1);
  const auto ok = run("long t = 0;  // pdslint:allow(wall-clock)\n");
  EXPECT_EQ(count_rule(ok, "bad-suppression"), 0);
}

// --- report ----------------------------------------------------------------

TEST(PdsflowReport, JsonParsesAndIsByteDeterministic) {
  const std::vector<SourceFile> files = {
      {"src/net/fixture.h", "#include \"core/predicate.h\"\n"},
      {"src/net/fixture.cc",
       "void decode(ByteReader& r, std::vector<int>& v) {\n"
       "  v.resize(r.get_u32());\n"
       "}\n"}};
  const FlowResult a = analyze(files);
  const FlowResult b = analyze(files);
  const std::string ja = render_flow_json(a);
  EXPECT_EQ(ja, render_flow_json(b));

  std::string error;
  const auto root = tools::parse_json(ja, &error);
  ASSERT_TRUE(root.has_value()) << error;
  const tools::JsonValue* schema = root->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->text, lint::kFlowReportSchema);
  const tools::JsonValue* rules = root->find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->items.size(), std::size(lint::kFlowRules));
  const tools::JsonValue* findings = root->find("findings");
  ASSERT_NE(findings, nullptr);
  EXPECT_EQ(findings->items.size(), a.findings.size());
}

TEST(PdsflowReport, FindingsAreSortedAndCounted) {
  const std::vector<SourceFile> files = {
      {"src/net/b_fixture.h", "#include \"core/predicate.h\"\n"},
      {"src/net/a_fixture.h", "#include \"core/descriptor.h\"\n"}};
  const FlowResult res = analyze(files);
  ASSERT_EQ(res.findings.size(), 2u);
  EXPECT_LE(res.findings[0].file, res.findings[1].file);
  EXPECT_EQ(res.summary.errors, 2);
  EXPECT_EQ(res.summary.files_scanned, 2);
  EXPECT_EQ(res.summary.unsuppressed(), 2);
}

}  // namespace
}  // namespace pds::flow
