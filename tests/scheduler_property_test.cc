// Property tests driving the calendar queue and the binary-heap oracle with
// identical randomized push/cancel/pop sequences. The two SchedulerKinds
// must agree on every observable: pop order (including equal-timestamp
// ties), next_time(), size(), and which cancels hit. See
// sim/event_queue.h on why both implementations exist.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/event_queue.h"
#include "workload/experiment.h"

namespace pds::sim {
namespace {

struct Pair {
  EventQueue cal{SchedulerKind::kCalendar};
  EventQueue heap{SchedulerKind::kHeap};
  // Parallel id books: ids_[k] is the k-th still-cancellable push.
  std::vector<EventQueue::EventId> cal_ids;
  std::vector<EventQueue::EventId> heap_ids;
  std::vector<int> tags;  // payload tag per tracked push (same order)

  void push(SimTime at, int tag, std::vector<int>& cal_log,
            std::vector<int>& heap_log) {
    cal_ids.push_back(cal.push(at, [tag, &cal_log] { cal_log.push_back(tag); }));
    heap_ids.push_back(
        heap.push(at, [tag, &heap_log] { heap_log.push_back(tag); }));
    tags.push_back(tag);
  }
};

// Drives both kinds through `steps` random operations and then drains both;
// asserts lockstep agreement throughout.
void run_lockstep(std::uint64_t seed, int steps, std::int64_t max_gap_us) {
  Rng rng(seed);
  Pair q;
  std::vector<int> cal_log;
  std::vector<int> heap_log;
  SimTime clock = SimTime::zero();
  int next_tag = 0;

  for (int step = 0; step < steps; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 99));
    if (op < 55 || q.cal.empty()) {
      // Push at a random offset from the drain clock; occasionally far
      // future so the overflow heap and window relocation get exercised.
      std::int64_t gap = rng.uniform_int(0, max_gap_us);
      if (rng.uniform_int(0, 19) == 0) gap += 100 * max_gap_us;
      // Duplicate timestamps are the interesting case: ties must pop in
      // insertion order in both kinds.
      const SimTime at = clock + SimTime::micros(gap);
      const int burst = static_cast<int>(rng.uniform_int(1, 3));
      for (int b = 0; b < burst; ++b) {
        q.push(at, next_tag++, cal_log, heap_log);
      }
    } else if (op < 75 && !q.tags.empty()) {
      // Cancel the same tracked entry in both queues (may already have
      // fired — cancel must be a harmless no-op then).
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(q.tags.size()) - 1));
      q.cal.cancel(q.cal_ids[pick]);
      q.heap.cancel(q.heap_ids[pick]);
    } else {
      ASSERT_EQ(q.cal.empty(), q.heap.empty());
      if (!q.cal.empty()) {
        ASSERT_EQ(q.cal.next_time(), q.heap.next_time());
        auto pc = q.cal.pop();
        auto ph = q.heap.pop();
        ASSERT_EQ(pc.at, ph.at);
        clock = std::max(clock, pc.at);
        pc.action();
        ph.action();
        ASSERT_EQ(cal_log, heap_log);
      }
    }
    ASSERT_EQ(q.cal.size(), q.heap.size());
  }

  while (!q.heap.empty()) {
    ASSERT_FALSE(q.cal.empty());
    ASSERT_EQ(q.cal.next_time(), q.heap.next_time());
    auto pc = q.cal.pop();
    auto ph = q.heap.pop();
    ASSERT_EQ(pc.at, ph.at);
    pc.action();
    ph.action();
  }
  ASSERT_TRUE(q.cal.empty());
  ASSERT_EQ(cal_log, heap_log);
  ASSERT_FALSE(cal_log.empty());
}

TEST(SchedulerProperty, DenseNearFutureAgrees) {
  // Gaps inside one bucket width: heavy equal-bucket and equal-timestamp
  // traffic, the calendar's sorted-bucket path.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_lockstep(seed, 4000, 100);
  }
}

TEST(SchedulerProperty, WideSpreadAgrees) {
  // Gaps spanning many buckets and the overflow boundary (window is
  // kBuckets * 128 µs ≈ 1 s; 20x far pushes land well outside).
  for (std::uint64_t seed = 101; seed <= 108; ++seed) {
    run_lockstep(seed, 3000, 50'000);
  }
}

TEST(SchedulerProperty, OverflowHeavyAgrees) {
  // Most pushes miss the window: the overflow heap carries the queue and
  // window relocation happens on nearly every pop.
  for (std::uint64_t seed = 201; seed <= 204; ++seed) {
    run_lockstep(seed, 2000, 5'000'000);
  }
}

TEST(SchedulerProperty, EqualTimestampTiesPopInInsertionOrder) {
  for (auto kind : {SchedulerKind::kCalendar, SchedulerKind::kHeap}) {
    EventQueue q(kind);
    std::vector<int> log;
    const SimTime at = SimTime::millis(5);
    for (int i = 0; i < 64; ++i) {
      q.push(at, [i, &log] { log.push_back(i); });
    }
    while (!q.empty()) {
      EXPECT_EQ(q.next_time(), at);
      q.pop().action();
    }
    std::vector<int> want(64);
    for (int i = 0; i < 64; ++i) want[i] = i;
    EXPECT_EQ(log, want);
  }
}

TEST(SchedulerProperty, CancelSemanticsMatch) {
  for (auto kind : {SchedulerKind::kCalendar, SchedulerKind::kHeap}) {
    EventQueue q(kind);
    int fired = 0;
    auto a = q.push(SimTime::millis(1), [&] { ++fired; });
    auto b = q.push(SimTime::millis(2), [&] { ++fired; });
    auto c = q.push(SimTime::millis(3), [&] { ++fired; });
    q.cancel(b);
    q.cancel(b);  // double cancel: no-op
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop().at, SimTime::millis(1));
    q.cancel(a);  // cancel after fire: no-op
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.pop().at, SimTime::millis(3));
    EXPECT_TRUE(q.empty());
    q.cancel(c);
    EXPECT_TRUE(q.empty());
  }
}

// Out-of-order standalone use: a far-future push anchors the window, then a
// near push must still pop first, and the far entry (now on a future ring
// lap from the relocated window's viewpoint) must surface afterwards.
TEST(SchedulerProperty, WindowRelocatesBackwards) {
  EventQueue cal(SchedulerKind::kCalendar);
  std::vector<int> log;
  cal.push(SimTime::seconds(10.0), [&] { log.push_back(10); });
  cal.push(SimTime::seconds(2.0), [&] { log.push_back(2); });
  cal.push(SimTime::seconds(6.0), [&] { log.push_back(6); });
  EXPECT_EQ(cal.next_time(), SimTime::seconds(2.0));
  cal.pop().action();
  cal.pop().action();
  cal.pop().action();
  EXPECT_EQ(log, (std::vector<int>{2, 6, 10}));
}

// Regression: future-lap ring entries must win over later overflow entries.
// Anchoring the window high, then popping a below-window event, strands the
// ring entries on a future lap while a farther event sits in overflow; the
// queue once popped the overflow entry first (observed as a fault-schedule
// restart firing after a send scheduled behind it).
TEST(SchedulerProperty, FutureLapRingEntryPrecedesLaterOverflowEntry) {
  EventQueue cal(SchedulerKind::kCalendar);
  std::vector<int> log;
  cal.push(SimTime::seconds(1.0), [&] { log.push_back(10); });  // anchors
  cal.push(SimTime::seconds(2.0), [&] { log.push_back(20); });  // in ring
  cal.push(SimTime::seconds(1.5), [&] { log.push_back(15); });  // in ring
  cal.push(SimTime::micros(130), [&] { log.push_back(0); });    // below window
  cal.push(SimTime::seconds(2.5), [&] { log.push_back(25); });  // overflow
  while (!cal.empty()) {
    EXPECT_EQ(cal.next_time(), cal.next_time());
    cal.pop().action();
  }
  EXPECT_EQ(log, (std::vector<int>{0, 10, 15, 20, 25}));
}

// End-to-end oracle check at the workload layer: the fig03 single-hop
// transport stats must be bit-identical under either scheduler. The ack mode
// exercises cancel() heavily (every delivered packet tears down its
// retransmission timer), so this would catch any kind-specific drift in
// cancel or tie-break semantics that the synthetic lockstep sweeps missed.
TEST(SchedulerProperty, SingleHopStatsIdenticalAcrossKinds) {
  for (const auto mode : {wl::TransportMode::kRawUdp,
                          wl::TransportMode::kLeakyBucket,
                          wl::TransportMode::kLeakyBucketAck}) {
    wl::SingleHopParams p;
    p.mode = mode;
    p.senders = 2;
    p.messages_per_sender = 400;
    p.scheduler = SchedulerKind::kCalendar;
    const wl::SingleHopOutcome cal = wl::run_single_hop(p);
    p.scheduler = SchedulerKind::kHeap;
    const wl::SingleHopOutcome heap = wl::run_single_hop(p);
    EXPECT_EQ(cal.reception, heap.reception);
    EXPECT_EQ(cal.data_rate_mbps, heap.data_rate_mbps);
  }
}

}  // namespace
}  // namespace pds::sim
