// Engine-level behavioural tests for PDD query/response processing on tiny
// deterministic topologies (loss-free medium): flooding and duplicate
// suppression, reverse-path response routing, lingering queries, mixedcast,
// en-route Bloom rewriting, opportunistic caching and the ablation toggles.
#include <gtest/gtest.h>

#include <map>

#include "net/transport.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds::core {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

// Nodes in a row, adjacent-only connectivity (spacing 10 m, range 15 m).
std::unique_ptr<wl::Scenario> make_line(std::size_t n, const PdsConfig& pds,
                                        std::uint64_t seed = 1) {
  auto sc = std::make_unique<wl::Scenario>(seed, lossless_radio());
  for (std::size_t i = 0; i < n; ++i) {
    sc->add_node(NodeId(static_cast<std::uint32_t>(i)),
                 {static_cast<double>(i) * 10.0, 0.0}, pds);
  }
  return sc;
}

DataDescriptor entry(int seq) {
  DataDescriptor d;
  d.set(kAttrDataType, std::string("sample"));
  d.set("seq", std::int64_t{seq});
  return d;
}

struct FrameCount {
  std::uint64_t queries = 0;
  std::uint64_t responses = 0;
  std::uint64_t response_bytes = 0;
  std::uint64_t entries_on_air = 0;
};

// Counting wrapper used by the tests below.
class CountingScenario {
 public:
  CountingScenario(std::size_t line_nodes, const PdsConfig& pds,
                   std::uint64_t seed = 1)
      : sc_(make_line(line_nodes, pds, seed)) {
    sc_->medium().set_tx_observer([this](NodeId, const sim::Frame& f) {
      const net::Message* msg = nullptr;
      if (auto m = std::dynamic_pointer_cast<const net::Message>(f.payload)) {
        msg = m.get();
      } else if (auto frag = std::dynamic_pointer_cast<
                     const net::FragmentPayload>(f.payload)) {
        if (frag->index != 0) return;  // count each message once
        msg = frag->whole.get();
      }
      if (msg == nullptr || msg->is_ack() || msg->is_repair()) return;
      if (msg->is_query()) {
        ++counts_.queries;
      } else {
        ++counts_.responses;
        counts_.response_bytes += f.size_bytes;
        counts_.entries_on_air += msg->metadata.size();
      }
    });
  }

  wl::Scenario& operator*() { return *sc_; }
  wl::Scenario* operator->() { return sc_.get(); }
  [[nodiscard]] const FrameCount& counts() const { return counts_; }

 private:
  std::unique_ptr<wl::Scenario> sc_;
  FrameCount counts_;
};

TEST(PddEngine, QueryFloodsOncePerNode) {
  PdsConfig pds;
  pds.max_rounds = 1;
  pds.empty_round_retries = 0;
  CountingScenario sc(5, pds);
  sc->node(NodeId(4)).publish_metadata(entry(1));

  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  // Each of the 5 nodes transmits the flooded query at most once (the last
  // node's forward dies unheard but is still sent).
  EXPECT_LE(sc.counts().queries, 5u);
  EXPECT_GE(sc.counts().queries, 4u);
}

TEST(PddEngine, EntriesReturnAlongReversePath) {
  PdsConfig pds;
  CountingScenario sc(4, pds);
  // Entries live at the far end; the consumer at node 0 must get them over
  // 3 hops.
  for (int i = 0; i < 10; ++i) sc->node(NodeId(3)).publish_metadata(entry(i));

  std::size_t received = 0;
  bool done = false;
  sc->node(NodeId(0)).discover(
      Filter{}, [&](const DiscoverySession::Result& r) {
        received = r.distinct_received;
        done = true;
      });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(received, 10u);
  // The response crossed 3 hops: transmitted 3 times (producer + 2 relays).
  EXPECT_EQ(sc.counts().responses, 3u);
}

TEST(PddEngine, IntermediateNodesCacheRelayedEntries) {
  PdsConfig pds;
  CountingScenario sc(4, pds);
  sc->node(NodeId(3)).publish_metadata(entry(7));

  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  // Relays 1 and 2 now hold the entry as cached metadata.
  EXPECT_TRUE(sc->node(NodeId(1)).store().has_metadata(
      entry(7).entry_key(), sc->sim().now()));
  EXPECT_TRUE(sc->node(NodeId(2)).store().has_metadata(
      entry(7).entry_key(), sc->sim().now()));
}

TEST(PddEngine, OverhearingCacheTogglesOff) {
  PdsConfig pds;
  pds.enable_overhearing_cache = false;
  // Triangle: consumer 0, producer 1 adjacent; node 2 adjacent to both but
  // never on the reverse path.
  auto sc = std::make_unique<wl::Scenario>(3, lossless_radio());
  sc->add_node(NodeId(0), {0, 0}, pds);
  sc->add_node(NodeId(1), {10, 0}, pds);
  sc->add_node(NodeId(2), {5, 8}, pds);
  sc->node(NodeId(1)).publish_metadata(entry(1));

  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  // Node 2 received the query (flooded: it is an intended receiver and
  // caches via its own lingering handling), but the response to node 0 was
  // only overheard — with the toggle off it must not be cached.
  EXPECT_FALSE(sc->node(NodeId(2)).store().has_metadata(
      entry(1).entry_key(), sc->sim().now()));
}

TEST(PddEngine, OverhearingCachePopulatesBystanders) {
  PdsConfig pds;  // default: overhearing cache on
  auto sc = std::make_unique<wl::Scenario>(3, lossless_radio());
  sc->add_node(NodeId(0), {0, 0}, pds);
  sc->add_node(NodeId(1), {10, 0}, pds);
  sc->add_node(NodeId(2), {5, 8}, pds);
  sc->node(NodeId(1)).publish_metadata(entry(1));

  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_TRUE(sc->node(NodeId(2)).store().has_metadata(
      entry(1).entry_key(), sc->sim().now()));
}

TEST(PddEngine, FilterPrunesResponses) {
  PdsConfig pds;
  CountingScenario sc(3, pds);
  for (int i = 0; i < 20; ++i) sc->node(NodeId(2)).publish_metadata(entry(i));

  Filter f;
  f.where_range("seq", std::int64_t{5}, std::int64_t{9});
  std::size_t received = 0;
  bool done = false;
  sc->node(NodeId(0)).discover(f, [&](const DiscoverySession::Result& r) {
    received = r.distinct_received;
    done = true;
  });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(received, 5u);
  EXPECT_EQ(sc.counts().entries_on_air, 10u);  // 5 entries × 2 hops
}

TEST(PddEngine, BloomRewritingSuppressesDuplicateEntries) {
  // Two producers hold identical copies of the same entries one hop apart;
  // with rewriting, the duplicate copies are pruned en route.
  PdsConfig with;
  PdsConfig without = with;
  without.enable_bloom_rewriting = false;

  std::uint64_t entries_with = 0;
  std::uint64_t entries_without = 0;
  for (int variant = 0; variant < 2; ++variant) {
    const PdsConfig& pds = variant == 0 ? with : without;
    CountingScenario sc(4, pds);
    // Same 30 entries at nodes 2 and 3 (redundancy 2).
    for (int i = 0; i < 30; ++i) {
      sc->node(NodeId(2)).publish_metadata(entry(i));
      sc->node(NodeId(3)).publish_metadata(entry(i));
    }
    bool done = false;
    std::size_t received = 0;
    sc->node(NodeId(0)).discover(Filter{},
                                 [&](const DiscoverySession::Result& r) {
                                   received = r.distinct_received;
                                   done = true;
                                 });
    sc->run_until(SimTime::seconds(60));
    ASSERT_TRUE(done);
    EXPECT_EQ(received, 30u);
    (variant == 0 ? entries_with : entries_without) =
        sc.counts().entries_on_air;
  }
  EXPECT_LT(entries_with, entries_without);
}

TEST(PddEngine, MixedcastServesTwoConsumersWithSharedTransmissions) {
  // Y topology: producer at the stem; two consumers behind a shared relay.
  // With mixedcast the relay's single transmission serves both consumers.
  PdsConfig with;
  PdsConfig without = with;
  without.enable_mixedcast = false;

  std::uint64_t responses_with = 0;
  std::uint64_t responses_without = 0;
  for (int variant = 0; variant < 2; ++variant) {
    const PdsConfig& pds = variant == 0 ? with : without;
    auto sc = std::make_unique<wl::Scenario>(7, lossless_radio());
    // producer(3) — relay(2) — fork: consumer A(0) and consumer B(1).
    sc->add_node(NodeId(3), {30, 0}, pds);
    sc->add_node(NodeId(2), {20, 0}, pds);
    sc->add_node(NodeId(0), {10, 6}, pds);   // adjacent to relay only
    sc->add_node(NodeId(1), {10, -6}, pds);  // adjacent to relay only
    for (int i = 0; i < 40; ++i) {
      sc->node(NodeId(3)).publish_metadata(entry(i));
    }

    std::uint64_t responses = 0;
    sc->medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
      const auto msg =
          std::dynamic_pointer_cast<const net::Message>(f.payload);
      if (msg != nullptr && msg->is_response() && from == NodeId(2)) {
        ++responses;
      }
    });

    int finished = 0;
    std::size_t got_a = 0;
    std::size_t got_b = 0;
    sc->node(NodeId(0)).discover(Filter{},
                                 [&](const DiscoverySession::Result& r) {
                                   got_a = r.distinct_received;
                                   ++finished;
                                 });
    sc->node(NodeId(1)).discover(Filter{},
                                 [&](const DiscoverySession::Result& r) {
                                   got_b = r.distinct_received;
                                   ++finished;
                                 });
    sc->run_until(SimTime::seconds(60));
    ASSERT_EQ(finished, 2);
    EXPECT_EQ(got_a, 40u);
    EXPECT_EQ(got_b, 40u);
    (variant == 0 ? responses_with : responses_without) = responses;
  }
  // Mixedcast: one joint transmission with both receivers listed; without
  // it, the relay transmits separately per consumer.
  EXPECT_LT(responses_with, responses_without);
}

TEST(PddEngine, TtlLimitsFloodScope) {
  PdsConfig pds;
  pds.max_rounds = 1;
  pds.empty_round_retries = 0;
  CountingScenario sc(6, pds);
  sc->node(NodeId(5)).publish_metadata(entry(1));

  // Send a hand-built query with ttl 2 from node 0: it must reach nodes 1
  // (ttl 2) and 2 (ttl 1, not forwarded), never nodes 3+.
  auto& consumer = sc->node(NodeId(0));
  auto query = std::make_shared<net::Message>();
  query->type = net::MessageType::kQuery;
  query->kind = net::ContentKind::kMetadata;
  query->query_id = consumer.context().new_query_id();
  query->sender = NodeId(0);
  query->expire_at = SimTime::seconds(100);
  query->ttl = 2;
  consumer.transport().send(query);
  sc->run_until(SimTime::seconds(10));

  EXPECT_TRUE(sc->node(NodeId(1)).lqt().contains(query->query_id));
  EXPECT_TRUE(sc->node(NodeId(2)).lqt().contains(query->query_id));
  EXPECT_FALSE(sc->node(NodeId(3)).lqt().contains(query->query_id));
}

TEST(PddEngine, ExpiredQueriesAreIgnored) {
  PdsConfig pds;
  CountingScenario sc(3, pds);
  sc->node(NodeId(2)).publish_metadata(entry(1));

  auto query = std::make_shared<net::Message>();
  query->type = net::MessageType::kQuery;
  query->kind = net::ContentKind::kMetadata;
  query->query_id = QueryId(12345);
  query->sender = NodeId(0);
  query->expire_at = SimTime::zero();  // already expired
  sc->node(NodeId(0)).transport().send(query);
  sc->run_until(SimTime::seconds(5));
  EXPECT_FALSE(sc->node(NodeId(1)).lqt().contains(QueryId(12345)));
}

TEST(PddEngine, SmallItemsCollectedWithPayload) {
  PdsConfig pds;
  CountingScenario sc(3, pds);
  Rng rng(5);
  const auto items = wl::make_sample_items(12, 150, wl::SampleSpace{}, rng);
  for (const auto& item : items) {
    sc->node(NodeId(2)).publish_item(item);
  }

  bool done = false;
  const DiscoverySession* session = nullptr;
  session = &sc->node(NodeId(0)).collect_items(
      Filter{}, [&](const DiscoverySession::Result&) { done = true; });
  sc->run_until(SimTime::seconds(30));
  ASSERT_TRUE(done);
  ASSERT_EQ(session->received_items().size(), 12u);
  // Payload content survives the trip.
  std::map<std::uint64_t, std::uint64_t> expected;
  for (const auto& item : items) {
    expected[item.descriptor.entry_key()] = item.content_hash;
  }
  for (const auto& got : session->received_items()) {
    EXPECT_EQ(got.content_hash, expected[got.descriptor.entry_key()]);
    EXPECT_EQ(got.size_bytes, 150u);
  }
}

}  // namespace
}  // namespace pds::core
