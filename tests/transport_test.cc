// Transport tests: leaky-bucket pacing, per-hop ack/retransmission, receiver
// list rewriting on retry, fragmentation/reassembly, ack batching and
// selective repair.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/transport.h"
#include "sim/radio.h"
#include "sim/simulator.h"

namespace pds::net {
namespace {

struct Harness {
  explicit Harness(std::uint64_t seed, sim::RadioConfig radio = {},
                   TransportConfig tc = {})
      : sim(seed), medium(sim, radio), cfg(tc) {}

  Transport& add(NodeId id, sim::Vec2 pos) {
    faces.push_back(std::make_unique<BroadcastFace>(medium, id, pos));
    transports.push_back(
        std::make_unique<Transport>(sim, *faces.back(), id, cfg, Codec{}));
    return *transports.back();
  }

  sim::Simulator sim;
  sim::RadioMedium medium;
  TransportConfig cfg;
  std::vector<std::unique_ptr<BroadcastFace>> faces;
  std::vector<std::unique_ptr<Transport>> transports;
};

std::shared_ptr<Message> make_response(NodeId sender,
                                       std::vector<NodeId> receivers,
                                       std::uint64_t id,
                                       std::uint32_t payload = 0) {
  auto m = std::make_shared<Message>();
  m->type = MessageType::kResponse;
  m->kind = ContentKind::kItem;
  m->response_id = ResponseId(id);
  m->sender = sender;
  m->receivers = std::move(receivers);
  if (payload > 0) {
    ItemPayload item;
    item.descriptor.set("n", std::int64_t{1});
    item.size_bytes = payload;
    m->items.push_back(std::move(item));
  }
  return m;
}

TEST(Transport, DeliversToHandler) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  Harness h(1, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});

  int delivered = 0;
  b.set_handler([&](const MessagePtr& m) {
    EXPECT_EQ(m->response_id, ResponseId(7));
    ++delivered;
  });
  a.send(make_response(NodeId(0), {NodeId(1)}, 7));
  h.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(b.stats().acks_sent, 1u);
  EXPECT_EQ(a.stats().acks_received, 1u);
  EXPECT_EQ(a.stats().retransmissions, 0u);
}

TEST(Transport, OverhearingDeliversToNonReceivers) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  Harness h(2, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});
  Transport& c = h.add(NodeId(2), {0, 10});

  int b_count = 0;
  int c_count = 0;
  b.set_handler([&](const MessagePtr&) { ++b_count; });
  c.set_handler([&](const MessagePtr&) { ++c_count; });
  a.send(make_response(NodeId(0), {NodeId(1)}, 7));
  h.sim.run();
  EXPECT_EQ(b_count, 1);
  EXPECT_EQ(c_count, 1);  // overheard
  EXPECT_EQ(c.stats().acks_sent, 0u);  // but not acked
}

TEST(Transport, RetransmitsUntilAcked) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.4;  // lossy channel
  Harness h(3, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});

  int delivered = 0;
  b.set_handler([&](const MessagePtr&) { ++delivered; });
  for (std::uint64_t i = 0; i < 50; ++i) {
    a.send(make_response(NodeId(0), {NodeId(1)}, 1000 + i));
  }
  h.sim.run();
  // Per-try loss 40%, 5 tries: expected delivery ≈ 1 - 0.4^5 ≈ 0.99.
  EXPECT_GE(delivered, 45);
  EXPECT_GT(a.stats().retransmissions, 10u);
}

TEST(Transport, GivesUpAfterMaxRetransmissions) {
  sim::RadioConfig radio;
  radio.loss_probability = 1.0;  // nothing gets through
  Harness h(4, radio);
  TransportConfig tc;
  Harness h2(4, radio, tc);
  Transport& a = h2.add(NodeId(0), {0, 0});
  h2.add(NodeId(1), {10, 0});

  a.send(make_response(NodeId(0), {NodeId(1)}, 5));
  h2.sim.run();
  EXPECT_EQ(a.stats().retransmissions,
            static_cast<std::uint64_t>(tc.max_retransmissions));
  EXPECT_EQ(a.stats().deliveries_gave_up, 1u);
}

TEST(Transport, RetransmissionTargetsOnlyUnacked) {
  // A two-receiver message where one receiver is unreachable: retries must
  // not spam the receiver that already acked. We detect this by counting
  // how many times the reachable receiver gets the frame.
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  radio.range_m = 15.0;
  Harness h(5, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});
  h.add(NodeId(2), {500, 0});  // out of range: never acks

  int b_frames = 0;
  b.set_handler([&](const MessagePtr&) { ++b_frames; });
  a.send(make_response(NodeId(0), {NodeId(1), NodeId(2)}, 6));
  h.sim.run();
  // b still *overhears* the retries (the transport hands every frame up;
  // protocol-level dedup lives in the node layer), but the retries are no
  // longer addressed to it, so it acks exactly once.
  EXPECT_GE(b_frames, 1);
  EXPECT_EQ(b.stats().acks_sent, 1u);
  EXPECT_EQ(a.stats().deliveries_gave_up, 1u);
}

TEST(Transport, UnreliableWhenNoReceivers) {
  sim::RadioConfig radio;
  radio.loss_probability = 1.0;
  Harness h(6, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  h.add(NodeId(1), {10, 0});
  a.send(make_response(NodeId(0), {}, 8));  // flooded: no acks expected
  h.sim.run();
  EXPECT_EQ(a.stats().retransmissions, 0u);
  EXPECT_EQ(a.stats().deliveries_gave_up, 0u);
}

TEST(Transport, PacingSpreadsReleases) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  TransportConfig tc;
  tc.reliability_enabled = false;
  tc.bucket_capacity_bytes = 2000;
  tc.leak_rate_bps = 1e6;
  Harness h(7, radio, tc);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});

  SimTime last_arrival = SimTime::zero();
  b.set_handler([&](const MessagePtr&) { last_arrival = h.sim.now(); });
  // 20 KB at 1 Mb/s ≈ 160 ms minus the 2 KB initial burst.
  for (std::uint64_t i = 0; i < 20; ++i) {
    a.send(make_response(NodeId(0), {NodeId(1)}, 100 + i, 900));
  }
  h.sim.run();
  EXPECT_GT(last_arrival.as_seconds(), 0.1);
}

TEST(Transport, FragmentsLargeMessagesAndReassembles) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  Harness h(8, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});

  int delivered = 0;
  b.set_handler([&](const MessagePtr& m) {
    ++delivered;
    ASSERT_TRUE(m->chunk.has_value());
    EXPECT_EQ(m->chunk->size_bytes, 262144u);
  });
  auto msg = std::make_shared<Message>();
  msg->type = MessageType::kResponse;
  msg->kind = ContentKind::kChunk;
  msg->response_id = ResponseId(42);
  msg->sender = NodeId(0);
  msg->receivers = {NodeId(1)};
  core::DataDescriptor d;
  d.set(core::kAttrTotalChunks, std::int64_t{1});
  msg->target = d;
  msg->chunk = ChunkPayload{.index = 0, .size_bytes = 262144,
                            .content_hash = 9};
  a.send(msg);
  h.sim.run();
  EXPECT_EQ(delivered, 1);
  // ~180 fragments on the air, each ≤ MTU.
  EXPECT_GT(h.medium.stats().frames_transmitted, 150u);
}

TEST(Transport, FragmentedDeliveryOverLossyLinkViaRepair) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.08;
  Harness h(9, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});

  int delivered = 0;
  b.set_handler([&](const MessagePtr&) { ++delivered; });
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto msg = std::make_shared<Message>();
    msg->type = MessageType::kResponse;
    msg->kind = ContentKind::kChunk;
    msg->response_id = ResponseId(500 + i);
    msg->sender = NodeId(0);
    msg->receivers = {NodeId(1)};
    core::DataDescriptor d;
    d.set(core::kAttrTotalChunks, std::int64_t{5});
    msg->target = d;
    msg->chunk = ChunkPayload{.index = static_cast<ChunkIndex>(i),
                              .size_bytes = 262144,
                              .content_hash = i};
    a.send(msg);
  }
  h.sim.run(SimTime::seconds(60));
  EXPECT_EQ(delivered, 5);
}

TEST(Transport, AcksAreBatched) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  Harness h(10, radio);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});
  b.set_handler([](const MessagePtr&) {});
  for (std::uint64_t i = 0; i < 100; ++i) {
    a.send(make_response(NodeId(0), {NodeId(1)}, 2000 + i, 1200));
  }
  h.sim.run();
  // 100 packets acked with far fewer ack frames thanks to aggregation.
  EXPECT_LT(b.stats().acks_sent, 60u);
  EXPECT_EQ(a.stats().deliveries_gave_up, 0u);
}

TEST(Transport, DisabledReliabilitySendsNoAcks) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  TransportConfig tc;
  tc.reliability_enabled = false;
  Harness h(11, radio, tc);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});
  int delivered = 0;
  b.set_handler([&](const MessagePtr&) { ++delivered; });
  a.send(make_response(NodeId(0), {NodeId(1)}, 77));
  h.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(b.stats().acks_sent, 0u);
}

TEST(Transport, InflightWindowQueuesExcessReliableSends) {
  sim::RadioConfig radio;
  radio.loss_probability = 0.0;
  TransportConfig tc;
  tc.max_inflight = 2;
  Harness h(12, radio, tc);
  Transport& a = h.add(NodeId(0), {0, 0});
  Transport& b = h.add(NodeId(1), {10, 0});
  int delivered = 0;
  b.set_handler([&](const MessagePtr&) { ++delivered; });
  for (std::uint64_t i = 0; i < 30; ++i) {
    a.send(make_response(NodeId(0), {NodeId(1)}, 3000 + i));
  }
  h.sim.run();
  EXPECT_EQ(delivered, 30);  // the queue drains as acks free slots
}

}  // namespace
}  // namespace pds::net
