// obs::Report emitter tests: the JSON a bench binary writes must round-trip
// through the pdsreport toolchain (tools/report_reader.h +
// tools/report_checks.h) with correct aggregate statistics, the gate
// assertions must pass on healthy data and fail loudly on doctored data, and
// the emitted bytes must be identical whatever PDS_BENCH_JOBS was — the
// report is part of the deterministic surface, like the NDJSON traces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/report.h"
#include "tools/flow_analysis.h"
#include "tools/report_checks.h"
#include "tools/report_reader.h"
#include "util/stats.h"
#include "workload/experiment.h"

namespace pds {
namespace {

// -- JSON writer primitives --------------------------------------------------

TEST(JsonWriter, NestsObjectsArraysAndEscapes) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name").value("line1\n\"x\"");
  w.key("list").begin_array().value(std::int64_t{1}).value(2.5).value(true)
      .end_array();
  w.key("inner").begin_object().key("k").value("v").end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"line1\\n\\\"x\\\"\",\"list\":[1,2.5,true],"
            "\"inner\":{\"k\":\"v\"}}");
}

TEST(JsonWriter, DoublesRoundTripThroughShortestForm) {
  for (const double v : {0.1, 1.0 / 3.0, 12345.6789, -2.0e-7, 5000.0}) {
    std::string out;
    obs::append_json_double(out, v);
    EXPECT_EQ(std::strtod(out.c_str(), nullptr), v) << out;
  }
}

// -- schema round-trip -------------------------------------------------------

obs::Report sample_report() {
  obs::Report::Options options;
  options.experiment = "fig08_simultaneous_pdd";
  options.title = "Fig. 8 — simultaneous PDD";
  options.paper = "recall stays 100%";
  options.runs = 2;
  options.jobs = 1;
  obs::Report report(std::move(options));
  report.set_param("entries", std::int64_t{5000});
  report.set_param("radio_profile", "contended");
  report.begin_table("main", {"consumers", "recall"});
  util::SampleSet recall_1;
  recall_1.add(1.0);
  recall_1.add(0.998);
  report.point().param("consumers", std::int64_t{1}).metric("recall",
                                                            recall_1, 3);
  util::SampleSet recall_5;
  recall_5.add(0.996);
  recall_5.add(1.0);
  report.point().param("consumers", std::int64_t{5}).metric("recall",
                                                            recall_5, 3);
  return report;
}

TEST(Report, JsonRoundTripsThroughParser) {
  const std::string json = sample_report().to_json();
  std::string parse_error;
  const auto root = tools::parse_json(json, &parse_error);
  ASSERT_TRUE(root.has_value()) << parse_error;

  std::vector<std::string> errors;
  const tools::ParsedReport rep = tools::parse_report(*root, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_EQ(rep.experiment, "fig08_simultaneous_pdd");
  EXPECT_EQ(rep.title, "Fig. 8 — simultaneous PDD");
  EXPECT_EQ(rep.paper, "recall stays 100%");
  EXPECT_EQ(rep.runs, 2);
  EXPECT_EQ(rep.jobs, 1);
  ASSERT_EQ(rep.points.size(), 2u);
  EXPECT_EQ(rep.points[0].section, "main");
  EXPECT_EQ(rep.points[0].num_param("consumers"), 1.0);
  EXPECT_EQ(rep.points[1].num_param("consumers"), 5.0);
  // Run-level params survive.
  bool saw_profile = false;
  for (const auto& [name, value] : rep.params) {
    if (name == "radio_profile") {
      saw_profile = true;
      EXPECT_EQ(value.display(), "contended");
    }
  }
  EXPECT_TRUE(saw_profile);
}

TEST(Report, AggregatesSampleStatistics) {
  obs::Report::Options options;
  options.experiment = "x";
  options.runs = 4;
  options.jobs = 1;
  obs::Report report(std::move(options));
  report.begin_section("s");
  util::SampleSet samples;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) samples.add(v);
  report.point().hidden_metric("m", samples);

  std::vector<std::string> errors;
  const auto root = tools::parse_json(report.to_json());
  ASSERT_TRUE(root.has_value());
  const tools::ParsedReport rep = tools::parse_report(*root, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(rep.points.size(), 1u);
  const tools::ReportMetric* m = rep.points[0].metric("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 4);
  EXPECT_DOUBLE_EQ(m->mean, 2.5);
  EXPECT_DOUBLE_EQ(m->min, 1.0);
  EXPECT_DOUBLE_EQ(m->max, 4.0);
  EXPECT_NEAR(m->stddev, samples.stddev(), 1e-12);
  ASSERT_EQ(m->samples.size(), 4u);
  EXPECT_EQ(m->samples[2], 3.0);
}

TEST(Report, ValidatorRejectsDoctoredAggregates) {
  std::string json = sample_report().to_json();
  // Corrupt a recorded mean without touching the samples; the validator must
  // notice the books don't balance.
  const std::string needle = "\"mean\":";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size() + 1, "\"mean\":9");
  const auto root = tools::parse_json(json);
  ASSERT_TRUE(root.has_value());
  std::vector<std::string> errors;
  tools::parse_report(*root, errors);
  EXPECT_FALSE(errors.empty());
}

TEST(Report, ValidatorRejectsUnknownSchema) {
  std::string json = sample_report().to_json();
  const std::string schema = tools::kBenchReportSchema;
  const std::size_t at = json.find(schema);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, schema.size(), "pds-bench-report/999");
  const auto root = tools::parse_json(json);
  ASSERT_TRUE(root.has_value());
  std::vector<std::string> errors;
  tools::parse_report(*root, errors);
  EXPECT_FALSE(errors.empty());
}

// -- pds-flow-report/1 sidecar validation ------------------------------------

TEST(FlowReport, RealAnalyzerOutputValidates) {
  const flow::FlowResult res = flow::analyze(
      {{"src/net/fixture.h", "#include \"core/predicate.h\"\n"},
       {"src/net/fixture.cc",
        "void decode(ByteReader& r, std::vector<int>& v) {\n"
        "  v.resize(r.get_u32());\n"
        "}\n"}});
  const std::string json = flow::render_flow_json(res);
  const auto root = tools::parse_json(json);
  ASSERT_TRUE(root.has_value());
  std::vector<std::string> errors;
  tools::validate_flow_report(*root, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(FlowReport, ValidatorRejectsDoctoredSummary) {
  const flow::FlowResult res = flow::analyze(
      {{"src/net/fixture.h", "#include \"core/predicate.h\"\n"}});
  std::string json = flow::render_flow_json(res);
  const std::string needle = "\"errors\":1";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size(), "\"errors\":0");
  const auto root = tools::parse_json(json);
  ASSERT_TRUE(root.has_value());
  std::vector<std::string> errors;
  tools::validate_flow_report(*root, errors);
  EXPECT_FALSE(errors.empty());
}

TEST(FlowReport, ValidatorRequiresFingerprints) {
  const flow::FlowResult res = flow::analyze(
      {{"src/net/fixture.h", "#include \"core/predicate.h\"\n"}});
  std::string json = flow::render_flow_json(res);
  const std::string needle = ",\"fingerprint\":\"includes:core/predicate.h\"";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.erase(at, needle.size());
  const auto root = tools::parse_json(json);
  ASSERT_TRUE(root.has_value());
  std::vector<std::string> errors;
  tools::validate_flow_report(*root, errors);
  EXPECT_FALSE(errors.empty());
}

// -- gates -------------------------------------------------------------------

tools::ParsedReport parse_ok(const std::string& json) {
  const auto root = tools::parse_json(json);
  EXPECT_TRUE(root.has_value());
  std::vector<std::string> errors;
  tools::ParsedReport rep = tools::parse_report(*root, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  return rep;
}

TEST(Gates, PassOnHealthyReport) {
  const tools::ParsedReport rep = parse_ok(sample_report().to_json());
  EXPECT_TRUE(tools::run_gates(rep).empty());
}

TEST(Gates, FailOnRecallCollapseNamingTheAssertion) {
  obs::Report::Options options;
  options.experiment = "fig08_simultaneous_pdd";
  options.runs = 1;
  options.jobs = 1;
  obs::Report report(std::move(options));
  report.begin_table("main", {"consumers", "recall"});
  report.point().param("consumers", std::int64_t{1}).metric("recall", 0.5, 3);

  const tools::ParsedReport rep = parse_ok(report.to_json());
  const std::vector<tools::GateFailure> failures = tools::run_gates(rep);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].experiment, "fig08_simultaneous_pdd");
  EXPECT_EQ(failures[0].assertion, "recall-stays-full");
}

TEST(Gates, FailOnBrokenMonotonicity) {
  obs::Report::Options options;
  options.experiment = "fig13_14_redundancy";
  options.runs = 1;
  options.jobs = 1;
  obs::Report report(std::move(options));
  report.begin_table("main", {"redundancy", "method", "overhead (MB)"});
  int redundancy = 1;
  for (const double overhead : {100.0, 260.0, 90.0}) {
    report.point()
        .param("redundancy", std::int64_t{redundancy++})
        .param("method", "MDR")
        .metric("recall", 1.0, 3)
        .metric("overhead_mb", overhead, 1);
  }
  const tools::ParsedReport rep = parse_ok(report.to_json());
  const std::vector<tools::GateFailure> failures = tools::run_gates(rep);
  bool saw_monotone = false;
  for (const tools::GateFailure& f : failures) {
    if (f.assertion == "mdr-overhead-monotone") saw_monotone = true;
  }
  EXPECT_TRUE(saw_monotone);
}

// -- determinism across PDS_BENCH_JOBS ---------------------------------------

std::string pdd_report_json() {
  obs::Report::Options options;
  options.experiment = "determinism_probe";
  options.runs = 4;
  options.jobs = bench::jobs();
  obs::Report report(std::move(options));
  report.begin_section("main");
  const bench::Series series = bench::average(4, [](std::uint64_t seed) {
    wl::PddGridParams p;
    p.nx = p.ny = 5;
    p.metadata_count = 300;
    p.consumers = 1;
    p.seed = seed;
    const wl::PddOutcome out = wl::run_pdd_grid(p);
    return std::tuple{out.recall, out.latency_s, out.overhead_mb};
  });
  report.point()
      .metric("recall", series.recall, 3)
      .metric("latency_s", series.latency_s, 2)
      .metric("overhead_mb", series.overhead_mb, 2);
  return report.to_json();
}

TEST(ReportDeterminism, JsonBytesIdenticalUnderParallelJobs) {
  ::setenv("PDS_BENCH_JOBS", "1", 1);
  const std::string serial = pdd_report_json();
  ::setenv("PDS_BENCH_JOBS", "4", 1);
  const std::string parallel = pdd_report_json();
  ::unsetenv("PDS_BENCH_JOBS");
  EXPECT_FALSE(serial.empty());
  // The recorded jobs count differs by design; everything else must not.
  const auto strip_jobs = [](std::string s) {
    const std::size_t at = s.find("\"jobs\":");
    EXPECT_NE(at, std::string::npos);
    const std::size_t end = s.find_first_of(",}", at);
    return s.erase(at, end - at);
  };
  EXPECT_EQ(strip_jobs(serial), strip_jobs(parallel));
}

}  // namespace
}  // namespace pds
