// Workload generator and scenario-builder tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/hash.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds::wl {
namespace {

TEST(Generator, SampleDescriptorsAreDistinctAndWellFormed) {
  Rng rng(1);
  const SampleSpace space;
  const auto entries = make_sample_descriptors(500, space, rng);
  ASSERT_EQ(entries.size(), 500u);
  std::unordered_set<std::uint64_t> keys;
  for (const auto& d : entries) {
    keys.insert(d.entry_key());
    EXPECT_EQ(d.namespace_name(), space.namespace_name);
    EXPECT_EQ(d.data_type(), space.data_type);
    ASSERT_NE(d.find("x"), nullptr);
    ASSERT_NE(d.find(core::kAttrTime), nullptr);
  }
  EXPECT_EQ(keys.size(), 500u);
}

TEST(Generator, SampleItemsCarryDeterministicContent) {
  Rng rng(2);
  const auto items = make_sample_items(20, 128, SampleSpace{}, rng);
  for (const auto& item : items) {
    EXPECT_EQ(item.size_bytes, 128u);
    EXPECT_EQ(item.content_hash, pds::mix64(item.descriptor.entry_key()));
  }
}

TEST(Generator, ChunkedItemShape) {
  const auto item = make_chunked_item("clip", 20u * 1024 * 1024, 256 * 1024);
  EXPECT_EQ(chunk_count(item), 80u);
  EXPECT_EQ(item.data_type(), "video");
  // Non-divisible size rounds the chunk count up and truncates the tail.
  const auto odd = make_chunked_item("odd", 1000, 300);
  EXPECT_EQ(chunk_count(odd), 4u);
  EXPECT_EQ(make_chunk(odd, 3, 1000, 300).size_bytes, 100u);
  EXPECT_EQ(make_chunk(odd, 0, 1000, 300).size_bytes, 300u);
}

TEST(Generator, ChunkHashesDifferPerChunkAndItem) {
  const auto a = make_chunked_item("a", 1024, 256);
  const auto b = make_chunked_item("b", 1024, 256);
  EXPECT_NE(chunk_content_hash(a.item_id(), 0),
            chunk_content_hash(a.item_id(), 1));
  EXPECT_NE(chunk_content_hash(a.item_id(), 0),
            chunk_content_hash(b.item_id(), 0));
}

TEST(Generator, DistributeMetadataHonorsRedundancyAndExclusion) {
  Scenario sc(1, sim::clean_radio_profile());
  core::PdsConfig pds;
  for (std::uint32_t i = 0; i < 10; ++i) {
    sc.add_node(NodeId(i), {static_cast<double>(i), 0}, pds);
  }
  Rng rng(3);
  const auto entries = make_sample_descriptors(40, SampleSpace{}, rng);
  auto nodes = sc.nodes();
  distribute_metadata(nodes, entries, /*redundancy=*/3, rng, {NodeId(0)});

  std::map<std::uint64_t, int> copies;
  for (core::PdsNode* n : nodes) {
    for (const auto& d :
         n->store().match_metadata(core::Filter{}, SimTime::zero())) {
      ++copies[d.entry_key()];
    }
  }
  EXPECT_EQ(copies.size(), 40u);
  for (const auto& [key, count] : copies) EXPECT_EQ(count, 3);
  // Excluded node holds nothing.
  EXPECT_EQ(sc.node(NodeId(0)).store().metadata_count(SimTime::zero()), 0u);
}

TEST(Generator, DistributeChunksPlacesDistinctHolders) {
  Scenario sc(2, sim::clean_radio_profile());
  core::PdsConfig pds;
  for (std::uint32_t i = 0; i < 8; ++i) {
    sc.add_node(NodeId(i), {static_cast<double>(i), 0}, pds);
  }
  Rng rng(4);
  const auto item = make_chunked_item("x", 4 * 256 * 1024, 256 * 1024);
  auto nodes = sc.nodes();
  distribute_chunks(nodes, item, 4 * 256 * 1024, 256 * 1024, 2, rng);

  for (ChunkIndex c = 0; c < 4; ++c) {
    int holders = 0;
    for (core::PdsNode* n : nodes) {
      if (n->store().has_chunk(item.item_id(), c)) ++holders;
    }
    EXPECT_EQ(holders, 2) << "chunk " << c;
  }
}

TEST(Scenario, GridHasEightNeighborConnectivity) {
  GridSetup setup;
  setup.nx = 5;
  setup.ny = 5;
  Grid grid = make_grid(setup, 1);
  // Center node has exactly 8 neighbors; corner has 3.
  EXPECT_EQ(grid.scenario->medium().neighbors(grid.center).size(), 8u);
  EXPECT_EQ(grid.scenario->medium().neighbors(grid.ids.front()).size(), 3u);
}

TEST(Scenario, CenterSubgridSelectsMiddleNodes) {
  GridSetup setup;
  setup.nx = 10;
  setup.ny = 10;
  Grid grid = make_grid(setup, 1);
  const auto sub = center_subgrid(grid, 5, 5);
  EXPECT_EQ(sub.size(), 25u);
  // The paper's center consumer belongs to the center subgrid.
  EXPECT_NE(std::find(sub.begin(), sub.end(), grid.center), sub.end());
}

TEST(Scenario, MobileWorldPinsConsumersAndInstallsChurn) {
  MobilitySetup setup;
  setup.mobility = sim::student_center_params();
  setup.mobility.duration = SimTime::minutes(5);
  setup.pinned_consumers = 2;
  MobileWorld world = make_mobile_world(setup, 7);
  EXPECT_EQ(world.consumers.size(), 2u);
  EXPECT_EQ(world.initially_present.size(), setup.mobility.population);
  for (NodeId c : world.consumers) {
    EXPECT_TRUE(world.scenario->medium().is_enabled(c));
  }
  // Churn events fire as the simulation runs: at least one node toggles.
  world.scenario->run_until(SimTime::minutes(5));
  std::size_t enabled = 0;
  for (NodeId id : world.pool) {
    if (world.scenario->medium().is_enabled(id)) ++enabled;
  }
  // Population stays near 20 (join/leave rates are balanced).
  EXPECT_NEAR(static_cast<double>(enabled),
              static_cast<double>(setup.mobility.population), 8.0);
  for (NodeId c : world.consumers) {
    EXPECT_TRUE(world.scenario->medium().is_enabled(c));
  }
}

TEST(Scenario, OverheadCountsBytesOnAir) {
  Scenario sc(3, sim::clean_radio_profile());
  core::PdsConfig pds;
  sc.add_node(NodeId(0), {0, 0}, pds);
  sc.add_node(NodeId(1), {10, 0}, pds);
  sc.node(NodeId(1)).publish_metadata([] {
    core::DataDescriptor d;
    d.set("k", std::int64_t{1});
    return d;
  }());
  EXPECT_DOUBLE_EQ(sc.overhead_mb(), 0.0);
  sc.node(NodeId(0)).discover(core::Filter{},
                              [](const core::DiscoverySession::Result&) {});
  sc.run_until(SimTime::seconds(30));
  EXPECT_GT(sc.overhead_mb(), 0.0);
  sc.reset_overhead();
  EXPECT_DOUBLE_EQ(sc.overhead_mb(), 0.0);
}

}  // namespace
}  // namespace pds::wl
