// Unit tests for the content-centric data model: attributes, descriptors,
// predicates/filters.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/bytes.h"
#include "core/attribute.h"
#include "core/descriptor.h"
#include "core/predicate.h"

namespace pds::core {
namespace {

// -- Attribute values ---------------------------------------------------------

TEST(AttributeValue, NumericCrossTypeComparison) {
  EXPECT_EQ(compare_values(AttrValue(std::int64_t{3}), AttrValue(3.0)),
            std::partial_ordering::equivalent);
  EXPECT_EQ(compare_values(AttrValue(std::int64_t{2}), AttrValue(2.5)),
            std::partial_ordering::less);
  EXPECT_EQ(compare_values(AttrValue(3.5), AttrValue(std::int64_t{3})),
            std::partial_ordering::greater);
}

TEST(AttributeValue, ExactIntegerComparisonAvoidsRounding) {
  const auto big = std::int64_t{1} << 60;
  EXPECT_EQ(compare_values(AttrValue(big), AttrValue(big + 1)),
            std::partial_ordering::less);
}

TEST(AttributeValue, StringComparison) {
  EXPECT_EQ(compare_values(AttrValue(std::string("abc")),
                           AttrValue(std::string("abd"))),
            std::partial_ordering::less);
  EXPECT_EQ(compare_values(AttrValue(std::string("x")),
                           AttrValue(std::string("x"))),
            std::partial_ordering::equivalent);
}

TEST(AttributeValue, StringVsNumberUnordered) {
  EXPECT_EQ(compare_values(AttrValue(std::string("5")),
                           AttrValue(std::int64_t{5})),
            std::partial_ordering::unordered);
}

TEST(AttributeValue, EncodeDecodeRoundTrip) {
  for (const AttrValue& v :
       {AttrValue(std::int64_t{-7}), AttrValue(2.718),
        AttrValue(std::string("namespace/type"))}) {
    ByteWriter w;
    encode_value(w, v);
    ByteReader r(w.bytes());
    EXPECT_EQ(decode_value(r), v);
  }
}

// -- DataDescriptor -----------------------------------------------------------

DataDescriptor sample_descriptor() {
  DataDescriptor d;
  d.set(kAttrNamespace, std::string("env"));
  d.set(kAttrDataType, std::string("nox"));
  d.set(kAttrTime, std::int64_t{1'600'000'000});
  d.set("x", 12.5);
  d.set("y", 3.25);
  return d;
}

TEST(DataDescriptor, AttributesSortedAndUnique) {
  DataDescriptor d;
  d.set("zebra", std::int64_t{1});
  d.set("alpha", std::int64_t{2});
  d.set("zebra", std::int64_t{3});  // replaces
  ASSERT_EQ(d.attributes().size(), 2u);
  EXPECT_EQ(d.attributes()[0].name, "alpha");
  EXPECT_EQ(d.attributes()[1].name, "zebra");
  EXPECT_EQ(*d.find("zebra"), AttrValue(std::int64_t{3}));
  EXPECT_EQ(d.find("missing"), nullptr);
}

TEST(DataDescriptor, InsertionOrderIrrelevantForIdentity) {
  DataDescriptor a;
  a.set("p", std::int64_t{1});
  a.set("q", std::int64_t{2});
  DataDescriptor b;
  b.set("q", std::int64_t{2});
  b.set("p", std::int64_t{1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.entry_key(), b.entry_key());
  EXPECT_EQ(a.canonical_bytes(), b.canonical_bytes());
}

TEST(DataDescriptor, WellKnownAccessors) {
  const DataDescriptor d = sample_descriptor();
  EXPECT_EQ(d.namespace_name(), "env");
  EXPECT_EQ(d.data_type(), "nox");
  EXPECT_FALSE(d.total_chunks().has_value());
  EXPECT_FALSE(d.is_chunk());
}

TEST(DataDescriptor, ChunkDescriptorRoundTrip) {
  DataDescriptor item = sample_descriptor();
  item.set(kAttrTotalChunks, std::int64_t{10});
  const DataDescriptor chunk3 = item.chunk_descriptor(3);
  EXPECT_TRUE(chunk3.is_chunk());
  EXPECT_EQ(chunk3.chunk_id(), 3u);
  EXPECT_EQ(chunk3.item_descriptor(), item);
  EXPECT_EQ(chunk3.item_id(), item.item_id());
  EXPECT_NE(chunk3.entry_key(), item.entry_key());
  EXPECT_NE(chunk3.entry_key(), item.chunk_descriptor(4).entry_key());
}

TEST(DataDescriptor, ItemIdExcludesChunkId) {
  DataDescriptor item = sample_descriptor();
  const ItemId id = item.item_id();
  for (ChunkIndex c = 0; c < 5; ++c) {
    EXPECT_EQ(item.chunk_descriptor(c).item_id(), id);
  }
}

TEST(DataDescriptor, EncodeDecodeRoundTrip) {
  const DataDescriptor d = sample_descriptor();
  ByteWriter w;
  d.encode(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(DataDescriptor::decode(r), d);
}

TEST(DataDescriptor, DecodeRejectsNonCanonicalOrder) {
  // Hand-craft an encoding with attributes out of order.
  ByteWriter w;
  w.put_u16(2);
  encode_attribute(w, Attribute{"b", std::int64_t{1}});
  encode_attribute(w, Attribute{"a", std::int64_t{2}});
  ByteReader r(w.bytes());
  EXPECT_THROW((void)DataDescriptor::decode(r), DecodeError);
}

TEST(DataDescriptor, KeyCacheInvalidatedBySet) {
  DataDescriptor d = sample_descriptor();
  const std::uint64_t k1 = d.entry_key();
  d.set("x", 99.0);
  EXPECT_NE(d.entry_key(), k1);
}

TEST(DataDescriptor, DistinctDescriptorsDistinctKeys) {
  std::unordered_set<std::uint64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    DataDescriptor d = sample_descriptor();
    d.set("seq", std::int64_t{i});
    keys.insert(d.entry_key());
  }
  EXPECT_EQ(keys.size(), 1000u);
}

// -- Predicates / Filters -------------------------------------------------------

TEST(Predicate, Relations) {
  const DataDescriptor d = sample_descriptor();
  auto pred = [](std::string attr, Relation rel, AttrValue v) {
    return Predicate{.attr = std::move(attr), .rel = rel, .value = std::move(v),
                     .value_hi = {}};
  };
  EXPECT_TRUE(pred("x", Relation::kEq, 12.5).matches(d));
  EXPECT_FALSE(pred("x", Relation::kEq, 12.6).matches(d));
  EXPECT_TRUE(pred("x", Relation::kNe, 12.6).matches(d));
  EXPECT_TRUE(pred("x", Relation::kLt, 13.0).matches(d));
  EXPECT_FALSE(pred("x", Relation::kLt, 12.5).matches(d));
  EXPECT_TRUE(pred("x", Relation::kLe, 12.5).matches(d));
  EXPECT_TRUE(pred("x", Relation::kGt, 12.0).matches(d));
  EXPECT_TRUE(pred("x", Relation::kGe, 12.5).matches(d));
  EXPECT_FALSE(pred("x", Relation::kGe, 12.6).matches(d));
}

TEST(Predicate, RangeInclusive) {
  const DataDescriptor d = sample_descriptor();
  Predicate p{.attr = "x",
              .rel = Relation::kInRange,
              .value = 12.5,
              .value_hi = 20.0};
  EXPECT_TRUE(p.matches(d));
  p.value = 12.6;
  EXPECT_FALSE(p.matches(d));
  p.value = 0.0;
  p.value_hi = 12.5;
  EXPECT_TRUE(p.matches(d));
}

TEST(Predicate, MissingAttributeNeverMatches) {
  const DataDescriptor d = sample_descriptor();
  Predicate p{.attr = "nope", .rel = Relation::kNe, .value = 0.0,
              .value_hi = {}};
  EXPECT_FALSE(p.matches(d));
}

TEST(Predicate, IncomparableTypesNeverMatch) {
  const DataDescriptor d = sample_descriptor();  // x is a double
  Predicate p{.attr = "x", .rel = Relation::kEq,
              .value = std::string("12.5"), .value_hi = {}};
  EXPECT_FALSE(p.matches(d));
}

TEST(Filter, EmptyMatchesAll) {
  EXPECT_TRUE(Filter{}.matches(sample_descriptor()));
  EXPECT_TRUE(Filter{}.match_all());
}

TEST(Filter, ConjunctionSemantics) {
  Filter f;
  f.where(std::string(kAttrDataType), Relation::kEq, std::string("nox"))
      .where_range("x", 0.0, 100.0);
  EXPECT_TRUE(f.matches(sample_descriptor()));

  DataDescriptor other = sample_descriptor();
  other.set(kAttrDataType, std::string("co2"));
  EXPECT_FALSE(f.matches(other));

  DataDescriptor far = sample_descriptor();
  far.set("x", 500.0);
  EXPECT_FALSE(f.matches(far));
}

TEST(Filter, SpatioTemporalQueryShape) {
  // The paper's canonical query: a data type within a spatial box and time
  // window.
  Filter f;
  f.where(std::string(kAttrNamespace), Relation::kEq, std::string("env"))
      .where(std::string(kAttrDataType), Relation::kEq, std::string("nox"))
      .where_range(std::string(kAttrTime), std::int64_t{1'599'999'000},
                   std::int64_t{1'600'001'000})
      .where_range("x", 10.0, 20.0)
      .where_range("y", 0.0, 10.0);
  EXPECT_TRUE(f.matches(sample_descriptor()));
}

TEST(Filter, EncodeDecodeRoundTrip) {
  Filter f;
  f.where("a", Relation::kGt, std::int64_t{5})
      .where_range("b", 1.0, 2.0)
      .where("c", Relation::kEq, std::string("str"));
  ByteWriter w;
  f.encode(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(Filter::decode(r), f);
}

TEST(Filter, DecodeRejectsUnknownRelation) {
  ByteWriter w;
  w.put_u16(1);
  w.put_string("a");
  w.put_u8(200);  // bogus relation
  encode_value(w, AttrValue(std::int64_t{1}));
  ByteReader r(w.bytes());
  EXPECT_THROW((void)Filter::decode(r), DecodeError);
}

}  // namespace
}  // namespace pds::core
