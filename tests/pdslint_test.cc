// pdslint engine tests: every rule fires on a seeded fixture violation,
// suppression comments work at line and file granularity, whitelisted files
// are exempt, and the JSON findings report round-trips through the same
// parser the bench-report toolchain uses.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint_rules.h"
#include "tools/report_reader.h"

namespace pds::lint {
namespace {

// Findings for `content` linted under a src/-like path (determinism rules
// apply there and nothing is whitelisted).
std::vector<Finding> run(const std::string& content,
                         const std::string& path = "src/core/fixture.cc",
                         const std::vector<std::string>& header_names = {}) {
  return lint_source(path, content, header_names);
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule,
               bool suppressed = false) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == rule && f.suppressed == suppressed;
      }));
}

TEST(PdslintLexer, StringsCommentsAndRawStringsAreNotCode) {
  const LexedFile lexed = lex(
      "// rand() in a comment\n"
      "const char* s = \"std::random_device\";\n"
      "const char* r = R\"(system_clock)\";\n"
      "int x = 0; /* steady_clock */\n");
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kIdent) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "random_device");
      EXPECT_NE(t.text, "system_clock");
      EXPECT_NE(t.text, "steady_clock");
    }
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 4);
}

TEST(PdslintLexer, TracksLinesAcrossBlockComments) {
  const LexedFile lexed = lex("/* a\nb\nc */\nint x;\n");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[0].line, 4);
}

TEST(PdslintRules, CleanSourceHasNoFindings) {
  const auto fs = run(
      "#include <map>\n"
      "#include \"common/rng.h\"\n"
      "double draw(pds::Rng& rng) { return rng.uniform(); }\n"
      "void emit(const std::map<int, int>& m) {\n"
      "  for (const auto& [k, v] : m) printf(\"%d %d\\n\", k, v);\n"
      "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(PdslintRules, DetectsAmbientRng) {
  const auto fs = run(
      "#include <random>\n"
      "int noisy() {\n"
      "  std::random_device rd;\n"
      "  srand(42);\n"
      "  return rand() + static_cast<int>(rd());\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "ambient-rng"), 3);
}

TEST(PdslintRules, DetectsWallClock) {
  const auto fs = run(
      "#include <chrono>\n"
      "#include <ctime>\n"
      "long stamp() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  (void)t;\n"
      "  return time(nullptr);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 2);
}

TEST(PdslintRules, WallClockWhitelistedForTimingBenches) {
  const std::string src =
      "#include <chrono>\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(run(src, "bench/micro_primitives.cc"), "wall-clock"),
            0);
  EXPECT_EQ(count_rule(run(src, "bench/perf_radio.cc"), "wall-clock"), 0);
  EXPECT_EQ(count_rule(run(src, "bench/fig03_singlehop.cc"), "wall-clock"), 1);
}

TEST(PdslintRules, DetectsAmbientParallelism) {
  const auto fs = run(
      "#include <thread>\n"
      "unsigned pool_size() {\n"
      "  return std::thread::hardware_concurrency();\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "ambient-parallelism"), 1);
}

TEST(PdslintRules, AmbientParallelismWhitelistedForJobsHelper) {
  const std::string src =
      "#include <thread>\n"
      "unsigned hc = std::thread::hardware_concurrency();\n";
  EXPECT_EQ(count_rule(run(src, "bench/parallel_runs.h"),
                       "ambient-parallelism"),
            0);
  EXPECT_EQ(count_rule(run(src, "src/sim/shard_executor.cc"),
                       "ambient-parallelism"),
            1);
}

TEST(PdslintRules, MemberTimeCallsAreNotTheCLibrary) {
  const auto fs = run(
      "double at(const Event& e) { return e.time(); }\n"
      "double via(const Event* e) { return e->time(); }\n");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 0);
}

TEST(PdslintRules, DetectsUnorderedIterationInSensitiveFile) {
  const auto fs = run(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> stats_;\n"
      "void dump() {\n"
      "  for (const auto& [k, v] : stats_) printf(\"%d %d\\n\", k, v);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1);
}

TEST(PdslintRules, UnorderedIterationIgnoredInInsensitiveFile) {
  // No output tokens, no Rng: hash order cannot leak anywhere observable.
  const auto fs = run(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m_;\n"
      "int sum() {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : m_) s += v;\n"
      "  return s;\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 0);
}

TEST(PdslintRules, DetectsIteratorWalkAndHeaderDeclaredMembers) {
  // The member is declared in the paired header; the .cc only iterates it.
  const auto fs = run(
      "void Engine::flush() {\n"
      "  for (auto it = pending_.begin(); it != pending_.end(); ++it)\n"
      "    std::cout << it->first;\n"
      "}\n",
      "src/core/engine.cc", collect_unordered_names(lex(
          "#include <unordered_map>\n"
          "class Engine { std::unordered_map<int, int> pending_; };\n")));
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1);
}

TEST(PdslintRules, DetectsAccessorReturningUnorderedRef) {
  const auto fs = run(
      "#include <unordered_map>\n"
      "struct S {\n"
      "  const std::unordered_map<int, int>& arrivals() const;\n"
      "};\n"
      "void dump(const S& s) {\n"
      "  for (const auto& [k, v] : s.arrivals()) printf(\"%d\\n\", k);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1);
}

TEST(PdslintRules, DetectsPointerKeyedContainers) {
  const auto fs = run(
      "#include <map>\n"
      "#include <set>\n"
      "struct Node;\n"
      "std::map<Node*, int> order_;\n"
      "std::set<const Node*> members_;\n"
      "std::map<int, Node*> fine_;\n");
  EXPECT_EQ(count_rule(fs, "pointer-order"), 2);
}

TEST(PdslintRules, DetectsPointerHash) {
  const auto fs = run(
      "#include <functional>\n"
      "struct Node;\n"
      "std::size_t h(Node* n) { return std::hash<Node*>{}(n); }\n");
  EXPECT_EQ(count_rule(fs, "pointer-order"), 1);
}

TEST(PdslintRules, DetectsUninitScalarFieldInCodecHeader) {
  const std::string src =
      "struct Header {\n"
      "  std::uint32_t size_bytes;\n"       // violation
      "  std::uint32_t count = 0;\n"        // initialized
      "  bool flag{false};\n"               // initialized
      "  std::vector<int> items;\n"         // class type, self-initializing
      "  std::uint64_t hash() const { return 0; }\n"  // function
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/net/message.h", src), "uninit-field"),
            1);
  // The same text outside codec/message headers is out of scope.
  EXPECT_EQ(count_rule(lint_source("src/sim/radio.h", src), "uninit-field"),
            0);
}

TEST(PdslintRules, DetectsUnvalidatedDecode) {
  const auto fs = run(
      "Message decode(ByteReader& r) {\n"
      "  Message m;\n"
      "  m.ttl = r.get_u8();\n"
      "  return m;\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "decode-assert"), 1);
}

TEST(PdslintRules, ValidatedDecodePasses) {
  for (const char* guard :
       {"PDS_ENSURE(m.ttl < 64);", "if (m.ttl > 64) throw 1;",
        "if (bad) { throw DecodeError(\"x\"); }"}) {
    const auto fs = run(std::string("Message decode(ByteReader& r) {\n"
                                    "  Message m;\n  ") +
                        guard + "\n  return m;\n}\n");
    EXPECT_EQ(count_rule(fs, "decode-assert"), 0) << guard;
  }
  // Declarations and method calls are not definitions.
  const auto fs = run(
      "Message decode(ByteReader& r);\n"
      "void f(Codec& c) { auto m = c.decode(bytes); }\n");
  EXPECT_EQ(count_rule(fs, "decode-assert"), 0);
}

TEST(PdslintRules, DetectsUnregisteredTraceEvent) {
  const auto fs = run(
      "void f(obs::Tracer* t, SimTime now, NodeId n) {\n"
      "  PDS_TRACE_INSTANT(t, now, n, \"pdd\", \"serve\", {\"query\", 1});\n"
      "  PDS_TRACE_INSTANT(t, now, n, \"pdd\", \"not_an_event\", {\"x\", 1});\n"
      "  PDS_TRACE_BEGIN(t, now, n, \"pdd\", \"round\", {\"round\", 1});\n"
      "  PDS_TRACE_EMIT(t, 'E', now, n, \"pdd\", \"round\", {\"round\", 1});\n"
      "  PDS_TRACE_EMIT(t, 'i', now, n, \"nope\", \"nah\");\n"
      "}\n");
  // Only the two (sub, ev) pairs missing from tools/trace_schema.h fire.
  EXPECT_EQ(count_rule(fs, "trace-schema"), 2);
}

TEST(PdslintRules, DynamicTraceEventNamesAreSkipped) {
  // The catalog check is syntactic: computed subsystem/event names (the
  // tracer test fixtures build them at runtime) cannot be resolved and must
  // not fire.
  const auto fs = run(
      "void f(obs::Tracer* t, SimTime now, NodeId n, const char* ev) {\n"
      "  PDS_TRACE_INSTANT(t, now, n, kSubsystem, ev, {\"x\", 1});\n"
      "  PDS_TRACE_INSTANT(t, now, n, \"pdd\", ev, {\"x\", 1});\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "trace-schema"), 0);
}

TEST(PdslintRules, TraceSchemaAllowlistExemptsTracerTests) {
  const auto fs = run(
      "void f(obs::Tracer* t, SimTime now, NodeId n) {\n"
      "  PDS_TRACE_INSTANT(t, now, n, \"synthetic\", \"ev\", {\"x\", 1});\n"
      "}\n",
      "tests/obs_test.cc");
  EXPECT_EQ(count_rule(fs, "trace-schema"), 0);
}

TEST(PdslintRules, DetectsUnregisteredStatsColumnAndScope) {
  const auto fs = run(
      "void f(obs::TimeSeries& ts, obs::Profiler* prof) {\n"
      "  PDS_TS_COLUMN(ts, \"sim.events\");\n"
      "  PDS_TS_COLUMN(ts, \"rss.peak_mb\", TimeSeries::Kind::kWall);\n"
      "  PDS_TS_COLUMN(ts, \"made.up_column\");\n"
      "  PDS_PROF_SCOPE(prof, \"radio\");\n"
      "  PDS_PROF_SCOPE(prof, \"not-a-subsystem\");\n"
      "}\n");
  // Only the column and the scope missing from tools/stats_schema.h fire.
  EXPECT_EQ(count_rule(fs, "stats-schema"), 2);
}

TEST(PdslintRules, DynamicStatsNamesAreSkipped) {
  // Syntactic check: computed names cannot be resolved and must not fire.
  const auto fs = run(
      "void f(obs::TimeSeries& ts, obs::Profiler* prof, const char* n) {\n"
      "  PDS_TS_COLUMN(ts, n);\n"
      "  PDS_PROF_SCOPE(prof, kScopeName);\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "stats-schema"), 0);
}

TEST(PdslintRules, StatsSchemaAllowlistExemptsRecorderTests) {
  const auto fs = run(
      "void f(obs::TimeSeries& ts) {\n"
      "  PDS_TS_COLUMN(ts, \"test.value\");\n"
      "}\n",
      "tests/timeseries_test.cc");
  EXPECT_EQ(count_rule(fs, "stats-schema"), 0);
}

TEST(PdslintSuppression, SameLineAndPreviousLine) {
  const auto same = run(
      "int x = rand();  // pdslint:allow(ambient-rng)\n");
  EXPECT_EQ(count_rule(same, "ambient-rng"), 0);
  EXPECT_EQ(count_rule(same, "ambient-rng", /*suppressed=*/true), 1);

  const auto prev = run(
      "// justified here: pdslint:allow(ambient-rng)\n"
      "int x = rand();\n");
  EXPECT_EQ(count_rule(prev, "ambient-rng"), 0);
  EXPECT_EQ(count_rule(prev, "ambient-rng", /*suppressed=*/true), 1);

  // Two lines above is out of reach — the suppression must sit on or
  // directly above the finding.
  const auto far = run(
      "// pdslint:allow(ambient-rng)\n"
      "\n"
      "int x = rand();\n");
  EXPECT_EQ(count_rule(far, "ambient-rng"), 1);
}

TEST(PdslintSuppression, FileWideAndMultiRule) {
  const auto fs = run(
      "// pdslint:allow-file(ambient-rng, wall-clock)\n"
      "int x = rand();\n"
      "long t = time(nullptr);\n"
      "std::random_device rd;\n");
  EXPECT_EQ(count_rule(fs, "ambient-rng"), 0);
  EXPECT_EQ(count_rule(fs, "wall-clock"), 0);
  EXPECT_EQ(count_rule(fs, "ambient-rng", /*suppressed=*/true), 2);
  EXPECT_EQ(count_rule(fs, "wall-clock", /*suppressed=*/true), 1);
}

TEST(PdslintSuppression, UnknownRuleIsItselfAFinding) {
  const auto fs = run("int x = 0;  // pdslint:allow(no-such-rule)\n");
  EXPECT_EQ(count_rule(fs, "bad-suppression"), 1);
}

TEST(PdslintSuppression, WrongRuleDoesNotSuppress) {
  const auto fs = run("int x = rand();  // pdslint:allow(wall-clock)\n");
  EXPECT_EQ(count_rule(fs, "ambient-rng"), 1);
}

TEST(PdslintReport, SummaryCountsBySeverityAndSuppression) {
  const auto fs = run(
      "int a = rand();\n"                                  // error
      "int b = rand();  // pdslint:allow(ambient-rng)\n"   // suppressed
      "Message decode(ByteReader& r) { return {}; }\n");   // warning
  const LintSummary s = summarize(fs, 1);
  EXPECT_EQ(s.errors, 1);
  EXPECT_EQ(s.warnings, 1);
  EXPECT_EQ(s.suppressed, 1);
  EXPECT_EQ(s.unsuppressed(), 2);
  EXPECT_EQ(s.files_scanned, 1);
}

TEST(PdslintReport, JsonRoundTripsThroughReportReader) {
  const auto fs = run(
      "int a = rand();\n"
      "long t = time(nullptr);  // pdslint:allow(wall-clock)\n");
  const LintSummary summary = summarize(fs, 1);
  const std::string json = render_json(fs, summary);

  std::string error;
  const auto root = tools::parse_json(json, &error);
  ASSERT_TRUE(root.has_value()) << error;
  ASSERT_TRUE(root->is_object());

  const tools::JsonValue* schema = root->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->text, kLintReportSchema);

  const tools::JsonValue* rules = root->find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->items.size(), std::size(kRules));

  const tools::JsonValue* findings = root->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->items.size(), fs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const tools::JsonValue& f = findings->items[i];
    EXPECT_EQ(f.find("rule")->text, fs[i].rule);
    EXPECT_EQ(f.find("file")->text, fs[i].file);
    EXPECT_EQ(static_cast<int>(f.find("line")->number), fs[i].line);
    EXPECT_EQ(f.find("suppressed")->boolean, fs[i].suppressed);
  }

  const tools::JsonValue* sum = root->find("summary");
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(static_cast<int>(sum->find("errors")->number), summary.errors);
  EXPECT_EQ(static_cast<int>(sum->find("suppressed")->number),
            summary.suppressed);

  // Byte determinism: rendering the same findings twice is identical.
  EXPECT_EQ(json, render_json(fs, summary));
}

TEST(PdslintReport, FindingsAreSortedByFileLineRule) {
  const auto a = run("int x = rand();\nstd::random_device rd;\n");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_LT(a[0].line, a[1].line);
}

}  // namespace
}  // namespace pds::lint
