// §IV: "retrieving many large data items ... can be achieved by applying
// [the retrieval mechanism] for each data item separately." Concurrent and
// interleaved retrievals of distinct items must not interfere: CDI state is
// keyed per item, chunk queries name their target, and caches are shared.
#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/generator.h"

namespace pds::wl {
namespace {

constexpr std::size_t kChunk = 64 * 1024;

core::PdsConfig small_chunks() {
  core::PdsConfig pds;
  pds.chunk_size_bytes = kChunk;
  return pds;
}

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

TEST(MultiItem, ConcurrentRetrievalsOfDistinctItemsComplete) {
  core::PdsConfig pds = small_chunks();
  GridSetup setup;
  setup.nx = setup.ny = 5;
  setup.radio = lossless_radio();
  setup.pds = pds;
  Grid grid = make_grid(setup, 21);
  Scenario& sc = *grid.scenario;

  Rng rng(5);
  auto nodes = sc.nodes();
  std::vector<core::DataDescriptor> items;
  for (int i = 0; i < 3; ++i) {
    items.push_back(make_chunked_item("item" + std::to_string(i), 6 * kChunk,
                                      kChunk));
    distribute_chunks(nodes, items.back(), 6 * kChunk, kChunk, 2, rng,
                      {grid.center});
  }

  int complete = 0;
  for (const auto& item : items) {
    grid.center_node().retrieve(item, [&](const core::RetrievalResult& r) {
      if (r.complete) ++complete;
    });
  }
  sc.run_until(SimTime::seconds(300));
  EXPECT_EQ(complete, 3);
}

TEST(MultiItem, ChunkIndicesDoNotCollideAcrossItems) {
  // Two items whose chunks share indices 0..3; a consumer fetching one must
  // never accept the other's chunks (item identity is part of every chunk's
  // key and every chunk query's target).
  core::PdsConfig pds = small_chunks();
  GridSetup setup;
  setup.nx = setup.ny = 4;
  setup.radio = lossless_radio();
  setup.pds = pds;
  Grid grid = make_grid(setup, 22);
  Scenario& sc = *grid.scenario;

  const auto wanted = make_chunked_item("wanted", 4 * kChunk, kChunk);
  const auto decoy = make_chunked_item("decoy", 4 * kChunk, kChunk);
  Rng rng(6);
  auto nodes = sc.nodes();
  distribute_chunks(nodes, wanted, 4 * kChunk, kChunk, 1, rng,
                    {grid.center});
  distribute_chunks(nodes, decoy, 4 * kChunk, kChunk, 3, rng, {grid.center});

  const core::PdrSession* session = nullptr;
  bool done = false;
  session = &grid.center_node().retrieve(
      wanted, [&](const core::RetrievalResult& r) {
        EXPECT_TRUE(r.complete);
        done = true;
      });
  sc.run_until(SimTime::seconds(300));
  ASSERT_TRUE(done);
  const ItemId id = wanted.item_id();
  for (const auto& [index, payload] : session->chunks()) {
    EXPECT_EQ(payload.content_hash, chunk_content_hash(id, index));
  }
}

TEST(MultiItem, TwoConsumersTwoItemsSimultaneously) {
  core::PdsConfig pds = small_chunks();
  GridSetup setup;
  setup.nx = setup.ny = 5;
  setup.radio = lossless_radio();
  setup.pds = pds;
  Grid grid = make_grid(setup, 23);
  Scenario& sc = *grid.scenario;

  const auto item_a = make_chunked_item("a", 6 * kChunk, kChunk);
  const auto item_b = make_chunked_item("b", 6 * kChunk, kChunk);
  Rng rng(7);
  auto nodes = sc.nodes();
  const NodeId consumer_a = grid.ids.front();
  const NodeId consumer_b = grid.ids.back();
  distribute_chunks(nodes, item_a, 6 * kChunk, kChunk, 2, rng,
                    {consumer_a, consumer_b});
  distribute_chunks(nodes, item_b, 6 * kChunk, kChunk, 2, rng,
                    {consumer_a, consumer_b});

  bool a_done = false;
  bool b_done = false;
  sc.node(consumer_a).retrieve(item_a, [&](const core::RetrievalResult& r) {
    a_done = r.complete;
  });
  sc.node(consumer_b).retrieve(item_b, [&](const core::RetrievalResult& r) {
    b_done = r.complete;
  });
  sc.run_until(SimTime::seconds(300));
  EXPECT_TRUE(a_done);
  EXPECT_TRUE(b_done);
}

}  // namespace
}  // namespace pds::wl
