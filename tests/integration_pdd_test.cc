// End-to-end PDD integration tests on small grids: discovery completeness,
// multi-round recovery, caching effects, and the saturation behaviours the
// paper reports in §VI-B.
#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace pds::wl {
namespace {

core::PdsConfig fast_config() {
  core::PdsConfig pds;
  // Paper's best parameters: T = 1 s, T_r = T_d = 0.
  return pds;
}

TEST(IntegrationPdd, SingleConsumerSmallGridFullRecall) {
  PddGridParams p;
  p.nx = 5;
  p.ny = 5;
  p.metadata_count = 500;
  p.pds = fast_config();
  p.seed = 42;
  const PddOutcome out = run_pdd_grid(p);
  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.99);
  EXPECT_GT(out.latency_s, 0.0);
  EXPECT_LT(out.latency_s, 30.0);
  EXPECT_GT(out.overhead_mb, 0.0);
}

TEST(IntegrationPdd, SingleRoundWithoutAckLosesEntries) {
  PddGridParams p;
  p.nx = 7;
  p.ny = 7;
  p.metadata_count = 2000;
  p.multi_round = false;
  p.ack = false;
  p.seed = 7;
  const PddOutcome single = run_pdd_grid(p);

  p.multi_round = true;
  p.ack = true;
  const PddOutcome multi = run_pdd_grid(p);

  EXPECT_LT(single.recall, 1.0);
  EXPECT_GT(multi.recall, single.recall);
  EXPECT_GE(multi.recall, 0.99);
}

TEST(IntegrationPdd, SequentialConsumersBenefitFromCaching) {
  PddGridParams p;
  p.nx = 7;
  p.ny = 7;
  // Enough entries that transfer time dominates the first consumer's
  // latency; the caching benefit for later consumers is then unambiguous.
  p.metadata_count = 4000;
  p.consumers = 3;
  p.sequential = true;
  p.seed = 11;
  const PddOutcome out = run_pdd_grid(p);
  ASSERT_TRUE(out.all_finished);
  ASSERT_EQ(out.per_consumer_recall.size(), 3u);
  for (double r : out.per_consumer_recall) EXPECT_GE(r, 0.99);
  // The paper's later consumers finish dramatically faster thanks to
  // overhearing/caching; require the last to beat the first.
  EXPECT_LT(out.per_consumer_latency_s.back(),
            out.per_consumer_latency_s.front());
}

TEST(IntegrationPdd, SimultaneousConsumersAllReachFullRecall) {
  PddGridParams p;
  p.nx = 7;
  p.ny = 7;
  p.metadata_count = 1000;
  p.consumers = 3;
  p.sequential = false;
  p.seed = 13;
  const PddOutcome out = run_pdd_grid(p);
  ASSERT_TRUE(out.all_finished);
  for (double r : out.per_consumer_recall) EXPECT_GE(r, 0.99);
}

}  // namespace
}  // namespace pds::wl
