// Everything at once: discovery, item collection, two-phase retrieval and a
// live subscription all running concurrently on a churning Student-Center
// crowd, with bounded caches and flood suppression enabled. Nothing should
// starve, wedge or corrupt.
#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds {
namespace {

TEST(KitchenSink, AllProtocolsConcurrentlyUnderChurn) {
  wl::MobilitySetup setup;
  setup.mobility = sim::student_center_params();
  setup.mobility.duration = SimTime::minutes(10);
  setup.pinned_consumers = 2;
  setup.pds.chunk_size_bytes = 64 * 1024;
  setup.pds.chunk_cache_bytes = 8u << 20;
  setup.pds.flood_assessment_delay = SimTime::millis(20);
  setup.pds.subscription_refresh = SimTime::seconds(4.0);
  wl::MobileWorld world = wl::make_mobile_world(setup, 41);
  wl::Scenario& sc = *world.scenario;

  Rng rng(9);
  std::vector<core::PdsNode*> present;
  for (NodeId id : world.initially_present) present.push_back(&sc.node(id));

  // Workload: 1,500 metadata entries, 100 small items, one 2 MB chunked
  // item (2 copies), spread over the initially present crowd.
  const auto entries =
      wl::make_sample_descriptors(1500, wl::SampleSpace{}, rng);
  wl::distribute_metadata(present, entries, 1, rng, world.consumers);
  const auto items = wl::make_sample_items(100, 120, wl::SampleSpace{}, rng);
  wl::distribute_items(present, items, 1, rng, world.consumers);
  const auto clip = wl::make_chunked_item("clip", 2u << 20, 64 * 1024);
  wl::distribute_chunks(present, clip, 2u << 20, 64 * 1024, 2, rng,
                        world.consumers);

  core::PdsNode& alice = sc.node(world.consumers[0]);
  core::PdsNode& bob = sc.node(world.consumers[1]);

  std::size_t discovered = 0;
  std::size_t collected = 0;
  bool retrieved = false;
  std::size_t streamed = 0;

  alice.discover(core::Filter{},
                 [&](const core::DiscoverySession::Result& r) {
                   discovered = r.distinct_received;
                   // Chain: once Alice knows the clip exists, fetch it.
                   alice.retrieve(clip, [&](const core::RetrievalResult& r2) {
                     retrieved = r2.complete;
                   });
                 });
  bob.collect_items(core::Filter{},
                    [&](const core::DiscoverySession::Result& r) {
                      collected = r.distinct_received;
                    });
  core::Filter live;
  live.where(std::string(core::kAttrDataType), core::Relation::kEq,
             std::string("live"));
  bob.subscribe(live, SimTime::minutes(9),
                [&](const core::DataDescriptor&) { ++streamed; });

  // A present producer emits live ticks throughout (skipping ticks while it
  // has wandered off — those never exist).
  const NodeId ticker = world.initially_present.back();
  std::size_t published = 0;
  for (int i = 0; i < 15; ++i) {
    sc.sim().schedule(SimTime::seconds(20.0 + 10.0 * i),
                      [&sc, &published, ticker, i] {
                        if (!sc.medium().is_enabled(ticker)) return;
                        core::DataDescriptor d;
                        d.set(core::kAttrDataType, std::string("live"));
                        d.set("tick", std::int64_t{i});
                        sc.node(ticker).publish_metadata(d);
                        ++published;
                      });
  }

  sc.run_until(SimTime::minutes(10));

  // Churn means data can leave; demand the bulk, not perfection.
  EXPECT_GE(discovered, 1350u);
  EXPECT_GE(collected, 85u);
  EXPECT_TRUE(retrieved);
  ASSERT_GT(published, 0u);
  EXPECT_GE(static_cast<double>(streamed) / static_cast<double>(published),
            0.7);
}

}  // namespace
}  // namespace pds
