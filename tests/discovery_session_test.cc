// Multi-round discovery controller tests (paper §III-B.2 semantics): window
// T, thresholds T_r / T_d, round counting, Bloom-filter round rebuilding,
// pre-cached seeding, and the empty-network edge cases.
#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds::core {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

std::unique_ptr<wl::Scenario> make_pair_network(const PdsConfig& pds,
                                                std::uint64_t seed = 1) {
  auto sc = std::make_unique<wl::Scenario>(seed, lossless_radio());
  sc->add_node(NodeId(0), {0, 0}, pds);
  sc->add_node(NodeId(1), {10, 0}, pds);
  return sc;
}

DataDescriptor entry(int seq) {
  DataDescriptor d;
  d.set("seq", std::int64_t{seq});
  return d;
}

TEST(DiscoverySession, TerminatesAfterOneQuietRoundWithTdZero) {
  PdsConfig pds;  // T_d = 0: stop as soon as a round adds nothing new
  auto sc = make_pair_network(pds);
  for (int i = 0; i < 20; ++i) sc->node(NodeId(1)).publish_metadata(entry(i));

  DiscoverySession::Result result;
  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result& r) {
                                 result = r;
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.distinct_received, 20u);
  // Round 1 fetches everything; round 2 confirms nothing new remains.
  EXPECT_EQ(result.rounds, 2);
}

TEST(DiscoverySession, LargerTdStopsEarlier) {
  // With T_d = 0.5 the session stops after round 1 (round 1 contributed
  // 100% > 50%? no: the rule starts a new round when the fraction EXCEEDS
  // T_d, so a 100%-new round still triggers round 2; set T_d high).
  PdsConfig pds;
  pds.threshold_td = 1.1;  // no round can exceed this: single round
  auto sc = make_pair_network(pds);
  for (int i = 0; i < 10; ++i) sc->node(NodeId(1)).publish_metadata(entry(i));

  DiscoverySession::Result result;
  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result& r) {
                                 result = r;
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(result.distinct_received, 10u);
}

TEST(DiscoverySession, WindowExtendsRoundWhileResponsesArrive) {
  // A larger T keeps the round open longer; with a tiny T the first round
  // can end between response batches. We verify rounds are weakly
  // decreasing in T.
  int rounds_small = 0;
  int rounds_large = 0;
  for (int variant = 0; variant < 2; ++variant) {
    PdsConfig pds;
    pds.window = variant == 0 ? SimTime::millis(150) : SimTime::seconds(1.5);
    auto sc = std::make_unique<wl::Scenario>(7, lossless_radio());
    for (std::uint32_t i = 0; i < 6; ++i) {
      sc->add_node(NodeId(i), {static_cast<double>(i) * 10.0, 0.0}, pds);
    }
    // Entries spread along the line arrive in hop-spaced waves.
    for (std::uint32_t n = 1; n < 6; ++n) {
      for (int i = 0; i < 30; ++i) {
        sc->node(NodeId(n)).publish_metadata(entry(static_cast<int>(n) * 100 + i));
      }
    }
    DiscoverySession::Result result;
    bool done = false;
    sc->node(NodeId(0)).discover(Filter{},
                                 [&](const DiscoverySession::Result& r) {
                                   result = r;
                                   done = true;
                                 });
    sc->run_until(SimTime::seconds(120));
    ASSERT_TRUE(done);
    EXPECT_EQ(result.distinct_received, 150u);
    (variant == 0 ? rounds_small : rounds_large) = result.rounds;
  }
  EXPECT_LE(rounds_large, rounds_small);
}

TEST(DiscoverySession, EmptyNetworkTerminatesWithZero) {
  PdsConfig pds;
  pds.empty_round_retries = 1;
  auto sc = make_pair_network(pds);

  DiscoverySession::Result result;
  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result& r) {
                                 result = r;
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.distinct_received, 0u);
  EXPECT_EQ(result.latency, SimTime::zero());
}

TEST(DiscoverySession, PreCachedEntriesCountImmediately) {
  PdsConfig pds;
  auto sc = make_pair_network(pds);
  // The consumer itself holds 5 entries; its neighbor holds 5 others.
  for (int i = 0; i < 5; ++i) sc->node(NodeId(0)).publish_metadata(entry(i));
  for (int i = 5; i < 10; ++i) sc->node(NodeId(1)).publish_metadata(entry(i));

  const DiscoverySession* session = nullptr;
  bool done = false;
  session = &sc->node(NodeId(0)).discover(
      Filter{}, [&](const DiscoverySession::Result&) { done = true; });
  // Local entries are visible synchronously at start.
  EXPECT_GE(session->arrivals().size(), 5u);
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(session->arrivals().size(), 10u);
}

TEST(DiscoverySession, FullyCachedConsumerFinishesFast) {
  PdsConfig pds;
  auto sc = make_pair_network(pds);
  for (int i = 0; i < 10; ++i) {
    sc->node(NodeId(0)).publish_metadata(entry(i));
    sc->node(NodeId(1)).publish_metadata(entry(i));
  }
  DiscoverySession::Result result;
  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result& r) {
                                 result = r;
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.distinct_received, 10u);
  // Everything was pre-cached: latency is (near) zero even though the
  // session still rounds to confirm the network holds nothing new.
  EXPECT_EQ(result.latency, SimTime::zero());
}

TEST(DiscoverySession, SecondRoundCarriesBloomFilter) {
  PdsConfig pds;
  auto sc = make_pair_network(pds);
  for (int i = 0; i < 50; ++i) sc->node(NodeId(1)).publish_metadata(entry(i));

  int queries_with_bloom = 0;
  int queries_total = 0;
  sc->medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
    const auto msg = std::dynamic_pointer_cast<const net::Message>(f.payload);
    if (msg == nullptr || !msg->is_query() || from != NodeId(0)) return;
    ++queries_total;
    if (!msg->exclude.empty_filter()) ++queries_with_bloom;
  });

  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_GE(queries_total, 2);
  EXPECT_EQ(queries_with_bloom, queries_total - 1);  // all but round 1
}

TEST(DiscoverySession, BloomDisabledSendsBareQueries) {
  PdsConfig pds;
  pds.enable_bloom_rewriting = false;
  auto sc = make_pair_network(pds);
  for (int i = 0; i < 50; ++i) sc->node(NodeId(1)).publish_metadata(entry(i));

  int queries_with_bloom = 0;
  sc->medium().set_tx_observer([&](NodeId, const sim::Frame& f) {
    const auto msg = std::dynamic_pointer_cast<const net::Message>(f.payload);
    if (msg != nullptr && msg->is_query() && !msg->exclude.empty_filter()) {
      ++queries_with_bloom;
    }
  });
  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result&) {
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(queries_with_bloom, 0);
}

TEST(DiscoverySession, MaxRoundsCapsLoop) {
  PdsConfig pds;
  pds.max_rounds = 3;
  pds.threshold_td = -1.0;  // always "start another round"
  auto sc = make_pair_network(pds);
  sc->node(NodeId(1)).publish_metadata(entry(1));

  DiscoverySession::Result result;
  bool done = false;
  sc->node(NodeId(0)).discover(Filter{},
                               [&](const DiscoverySession::Result& r) {
                                 result = r;
                                 done = true;
                               });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.rounds, 3);
}

TEST(DiscoverySession, LatencyIsLastNewEntryArrival) {
  PdsConfig pds;
  auto sc = make_pair_network(pds);
  for (int i = 0; i < 10; ++i) sc->node(NodeId(1)).publish_metadata(entry(i));

  const DiscoverySession* session = nullptr;
  DiscoverySession::Result result;
  bool done = false;
  session = &sc->node(NodeId(0)).discover(
      Filter{}, [&](const DiscoverySession::Result& r) {
        result = r;
        done = true;
      });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  SimTime last = SimTime::zero();
  for (const auto& [key, when] : session->arrivals()) {
    last = std::max(last, when);
  }
  EXPECT_EQ(result.latency, last);
  // The session keeps confirming after the last entry: finished_at is
  // strictly later than the latency timestamp.
  EXPECT_GT(result.finished_at, result.latency);
}

}  // namespace
}  // namespace pds::core
