// The parallel multi-seed runner must be a drop-in replacement for the
// serial seed loop: same results, same order, same merged statistics —
// regardless of PDS_BENCH_JOBS.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "parallel_runs.h"

namespace pds::bench {
namespace {

class JobsEnv : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("PDS_BENCH_JOBS"); }
};

using ParallelRuns = JobsEnv;

TEST_F(ParallelRuns, JobsHonorsEnvironment) {
  ::setenv("PDS_BENCH_JOBS", "3", 1);
  EXPECT_EQ(jobs(), 3);
  ::setenv("PDS_BENCH_JOBS", "1", 1);
  EXPECT_EQ(jobs(), 1);
  ::unsetenv("PDS_BENCH_JOBS");
  EXPECT_GE(jobs(), 1);
}

TEST_F(ParallelRuns, JobsRejectsInvalidEnvironment) {
  // A typo'd override must not silently fall back and skew a measurement:
  // invalid or non-positive values are fatal (stderr note, exit 2).
  for (const char* bad : {"garbage", "0", "-4", "3x", ""}) {
    ::setenv("PDS_BENCH_JOBS", bad, 1);
    EXPECT_EXIT(jobs(), ::testing::ExitedWithCode(2),
                "PDS_BENCH_JOBS must be a positive integer")
        << "value \"" << bad << "\"";
  }
}

TEST_F(ParallelRuns, RunsRejectsInvalidEnvironment) {
  ::setenv("PDS_BENCH_RUNS", "five", 1);
  EXPECT_EXIT(runs(), ::testing::ExitedWithCode(2),
              "PDS_BENCH_RUNS must be a positive integer");
  ::unsetenv("PDS_BENCH_RUNS");
}

TEST_F(ParallelRuns, ResultsIndexedInCallOrder) {
  ::setenv("PDS_BENCH_JOBS", "4", 1);
  // Skew completion times against index order: later indices finish first.
  const auto results = run_indexed(8, [](int i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
    return i * 10;
  });
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 10);
}

TEST_F(ParallelRuns, HandlesZeroAndSingleRuns) {
  EXPECT_TRUE(run_indexed(0, [](int) { return 1; }).empty());
  EXPECT_EQ(run_indexed(1, [](int i) { return i + 41; }),
            (std::vector<int>{41}));
}

TEST_F(ParallelRuns, ExceptionsPropagateToCaller) {
  ::setenv("PDS_BENCH_JOBS", "4", 1);
  EXPECT_THROW(run_indexed(6,
                           [](int i) {
                             if (i == 3) throw std::runtime_error("boom");
                             return i;
                           }),
               std::runtime_error);
}

// A deterministic stand-in for an experiment: metrics are pure functions of
// the seed, so the merged Series must match the serial reference exactly.
std::tuple<double, double, double> fake_outcome(std::uint64_t seed) {
  const auto s = static_cast<double>(seed);
  return {1.0 / s, s * 0.25, s * s * 0.125};
}

Series serial_reference(int n) {
  Series s;
  for (int i = 0; i < n; ++i) {
    const auto [recall, latency, overhead] =
        fake_outcome(static_cast<std::uint64_t>(i + 1));
    s.recall.add(recall);
    s.latency_s.add(latency);
    s.overhead_mb.add(overhead);
  }
  return s;
}

void expect_same_series(const Series& got, const Series& want) {
  ASSERT_EQ(got.recall.count(), want.recall.count());
  // Bit-exact, not approximate: merging in seed order means the same doubles
  // are accumulated in the same order.
  EXPECT_EQ(got.recall.mean(), want.recall.mean());
  EXPECT_EQ(got.latency_s.mean(), want.latency_s.mean());
  EXPECT_EQ(got.overhead_mb.mean(), want.overhead_mb.mean());
  EXPECT_EQ(got.recall.percentile(90.0), want.recall.percentile(90.0));
  EXPECT_EQ(got.latency_s.median(), want.latency_s.median());
  EXPECT_EQ(got.overhead_mb.percentile(25.0),
            want.overhead_mb.percentile(25.0));
}

TEST_F(ParallelRuns, AverageMatchesSerialLoopAcrossJobCounts) {
  const int n = 9;
  const Series want = serial_reference(n);
  for (const char* env_jobs : {"1", "2", "4", "13"}) {
    ::setenv("PDS_BENCH_JOBS", env_jobs, 1);
    const Series got = average(n, fake_outcome);
    expect_same_series(got, want);
  }
}

TEST_F(ParallelRuns, AverageWithMoreJobsThanSeeds) {
  ::setenv("PDS_BENCH_JOBS", "16", 1);
  expect_same_series(average(2, fake_outcome), serial_reference(2));
}

}  // namespace
}  // namespace pds::bench
