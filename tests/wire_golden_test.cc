// Golden wire vectors (DESIGN.md §16): checked-in hex encodings of every
// frame type, classic and v2. Any byte-level drift in the codec — field
// order, varint canonicalization, extension flag layout — fails these tests
// before it can silently break interop between nodes built from different
// revisions. When a change *intends* to alter the wire format, the fixtures
// must be regenerated (run with --gtest_also_run_disabled_tests to print
// actuals) and the change called out as a wire-compat break.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/bloom_delta.h"
#include "net/codec.h"

namespace pds::net {
namespace {

std::string hex(std::span<const std::byte> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::byte b : bytes) {
    const int v = std::to_integer<int>(b);
    s.push_back(kDigits[v >> 4]);
    s.push_back(kDigits[v & 0xf]);
  }
  return s;
}

// Asserts the encoding matches the checked-in fixture byte for byte, and
// that the fixture decodes back to a message that re-encodes identically
// (so the golden bytes are also a decoder regression vector).
void expect_golden(const char* name, const Codec& codec, const Message& m,
                   std::string_view expected) {
  const std::vector<std::byte> wire = codec.encode(m);
  const std::string actual = hex(wire);
  EXPECT_EQ(actual, expected)
      << "golden fixture '" << name << "' drifted; actual bytes:\n"
      << actual;
  const Message back = codec.decode(wire);
  EXPECT_EQ(hex(codec.encode(back)), actual) << name;
  EXPECT_EQ(codec.wire_size(m), codec.wire_size(back)) << name;
}

// Deterministic building blocks shared by fixtures.

util::BloomFilter golden_bloom() {
  util::BloomFilter f = util::BloomFilter::with_capacity(128, 0.01, 42);
  for (std::uint64_t k = 1; k <= 5; ++k) f.insert(k);
  return f;
}

core::DataDescriptor golden_descriptor(int salt) {
  core::DataDescriptor d;
  d.set("kind", std::string("video"));
  d.set("segment", static_cast<std::int64_t>(100 + salt));
  d.set("quality", 0.75);
  return d;
}

Message golden_ack() {
  Message m;
  m.type = MessageType::kAck;
  m.ack_tokens = {0x1111, 0x2222};
  m.acker = NodeId(7);
  return m;
}

Message golden_repair() {
  Message m;
  m.type = MessageType::kRepair;
  m.ack_tokens = {0xabcd};
  m.acker = NodeId(9);
  m.requested_chunks = {3, 4, 7};
  return m;
}

Message golden_metadata_query() {
  Message m;
  m.type = MessageType::kQuery;
  m.kind = ContentKind::kMetadata;
  m.query_id = QueryId(0x1234);
  m.sender = NodeId(5);
  m.receivers = {NodeId(1), NodeId(2)};
  m.expire_at = SimTime::micros(5'000'000);
  m.ttl = 4;
  m.filter.where("region", core::Relation::kEq, std::string("plaza"));
  m.filter.where("age_s", core::Relation::kLe, static_cast<std::int64_t>(60));
  m.exclude = golden_bloom();
  return m;
}

Message golden_chunk_query() {
  Message m;
  m.type = MessageType::kQuery;
  m.kind = ContentKind::kChunk;
  m.query_id = QueryId(0x5678);
  m.sender = NodeId(3);
  m.expire_at = SimTime::micros(2'000'000);
  m.ttl = 8;
  m.target = golden_descriptor(0);
  m.requested_chunks = {2, 3, 5, 9};
  return m;
}

// Bloom-sync frames as a discovery session would emit them: a full snapshot
// (seq 0) then a delta (seq 1) after more inserts.
struct GoldenDeltaFrames {
  BloomDeltaFrame full;
  BloomDeltaFrame delta;
};

GoldenDeltaFrames golden_delta_frames() {
  DeltaBloomSender sender;
  util::BloomFilter f = util::BloomFilter::with_capacity(64, 0.01, 7);
  for (std::uint64_t k = 1; k <= 3; ++k) f.insert(k);
  GoldenDeltaFrames frames;
  frames.full = sender.next_frame(0x1234, 1, f);
  f.insert(4);
  f.insert(5);
  frames.delta = sender.next_frame(0x1234, 1, f);
  return frames;
}

Message golden_v2_query(const BloomDeltaFrame& frame) {
  Message m;
  m.type = MessageType::kQuery;
  m.kind = ContentKind::kChunk;
  m.query_id = QueryId(0x1234);
  m.sender = NodeId(5);
  m.expire_at = SimTime::micros(5'000'000);
  m.ttl = 4;
  m.target = golden_descriptor(0);
  m.exclude_delta = frame;
  m.requested_chunks = {2, 3, 5, 9};  // strictly increasing: bitmap engages
  return m;
}

Message golden_metadata_response() {
  Message m;
  m.type = MessageType::kResponse;
  m.kind = ContentKind::kMetadata;
  m.response_id = ResponseId(0x9999);
  m.sender = NodeId(11);
  m.receivers = {NodeId(5)};
  m.metadata = {golden_descriptor(0), golden_descriptor(1),
                golden_descriptor(2)};
  return m;
}

Message golden_cdi_response() {
  Message m;
  m.type = MessageType::kResponse;
  m.kind = ContentKind::kCdi;
  m.response_id = ResponseId(0x7777);
  m.sender = NodeId(13);
  m.receivers = {NodeId(3)};
  m.target = golden_descriptor(0);
  m.cdi = {{.chunk = 0, .hop_count = 1},
           {.chunk = 1, .hop_count = 1},
           {.chunk = 3, .hop_count = 2},
           {.chunk = 6, .hop_count = 2}};
  return m;
}

Message golden_chunk_response() {
  Message m;
  m.type = MessageType::kResponse;
  m.kind = ContentKind::kChunk;
  m.response_id = ResponseId(0x4242);
  m.sender = NodeId(2);
  m.receivers = {NodeId(3)};
  m.target = golden_descriptor(0);
  m.chunk = ChunkPayload{
      .index = 5, .size_bytes = 256 * 1024, .content_hash = 0xdeadbeef};
  return m;
}

Message golden_item_response() {
  Message m;
  m.type = MessageType::kResponse;
  m.kind = ContentKind::kItem;
  m.response_id = ResponseId(0x3131);
  m.sender = NodeId(17);
  m.receivers = {NodeId(4)};
  ItemPayload item;
  item.descriptor = golden_descriptor(3);
  item.size_bytes = 900;
  item.content_hash = 0xfeedface;
  m.items = {item};
  return m;
}

TEST(WireGolden, Ack) {
  expect_golden("ack", Codec{}, golden_ack(),
                "0202001111000000000000222200000000000007000000");
}

TEST(WireGolden, Repair) {
  expect_golden("repair", Codec{}, golden_repair(),
                "03cdab000000000000090000000300030000000400000007000000");
}

TEST(WireGolden, ClassicMetadataQuery) {
  expect_golden(
      "classic-metadata-query", Codec{}, golden_metadata_query(),
      "0000050000003412000000000000404b4c000000000004020100000002000000"
      "0002000600726567696f6e00020500706c617a6105006167655f7303003c0000"
      "0000000000ae0000000100050000072a00000000000000000004000082000001"
      "0200000000000000000040000000000000400000000000800020000000000040"
      "8022080000000020000000000000101000000000000000180000000000000004"
      "0000000000000022000000000080000000000000000000000000000000000100"
      "1004010000000000000000040000000000000000080000000000000000000000"
      "02800000400000200100100000000000000000000000000000");
}

TEST(WireGolden, ClassicChunkQuery) {
  expect_golden(
      "classic-chunk-query", Codec{}, golden_chunk_query(),
      "000303000000785600000000000080841e0000000000080001030004006b696e"
      "64020500766964656f07007175616c69747901000000000000e83f0700736567"
      "6d656e7400640000000000000000000100000000040002000000030000000500"
      "000009000000");
}

TEST(WireGolden, V2QueryFullDeltaFrame) {
  WireConfig cfg;
  cfg.delta_bloom = true;
  cfg.chunk_bitmap = true;
  const GoldenDeltaFrames frames = golden_delta_frames();
  expect_golden(
      "v2-query-full-delta", Codec(cfg), golden_v2_query(frames.full),
      "400503050000003412000000000000404b4c0000000000040001030004006b69"
      "6e64020500766964656f07007175616c69747901000000000000e83f07007365"
      "676d656e74006400000000000000000034120000000000000100018005070700"
      "0000000000006357d5d89536613f0a0000000000004000000100800000000000"
      "0001000000000000000201000000040004200001000000020000004001000201"
      "1000000000010000080100000000010004400000000000010120000008000000"
      "01100010800000000002088b");
}

TEST(WireGolden, V2QueryDeltaFrame) {
  WireConfig cfg;
  cfg.delta_bloom = true;
  cfg.chunk_bitmap = true;
  const GoldenDeltaFrames frames = golden_delta_frames();
  expect_golden("v2-query-delta", Codec(cfg),
                golden_v2_query(frames.delta),
                "400503050000003412000000000000404b4c0000000000040001030004006b69"
      "6e64020500766964656f07007175616c69747901000000000000e83f07007365"
      "676d656e74006400000000000000000034120000000000000101006357d5d895"
      "36613f66380e188d63108d090000080000004000000200000000000200020100"
      "0000040004221001000010020000004001800201100000000001000008050000"
      "000001000440000020002001012000000900800101104010800000000002088b");
}

TEST(WireGolden, ClassicMetadataResponse) {
  expect_golden(
      "classic-metadata-response", Codec{}, golden_metadata_response(),
      "01000b0000009999000000000000ffffffffffffff7f00010500000000030003"
      "0004006b696e64020500766964656f07007175616c69747901000000000000e8"
      "3f07007365676d656e74006400000000000000030004006b696e640205007669"
      "64656f07007175616c69747901000000000000e83f07007365676d656e740065"
      "00000000000000030004006b696e64020500766964656f07007175616c697479"
      "01000000000000e83f07007365676d656e740066000000000000000000000000");
}

TEST(WireGolden, ClassicCdiResponse) {
  expect_golden("classic-cdi-response", Codec{}, golden_cdi_response(),
                "01020d0000007777000000000000ffffffffffffff7f00010300000001030004"
      "006b696e64020500766964656f07007175616c69747901000000000000e83f07"
      "007365676d656e74006400000000000000000004000000000001000000010000"
      "000100000003000000020000000600000002000000000000");
}

TEST(WireGolden, ChunkResponse) {
  expect_golden("chunk-response", Codec{}, golden_chunk_response(),
                "0103020000004242000000000000ffffffffffffff7f00010300000001030004"
      "006b696e64020500766964656f07007175616c69747901000000000000e83f07"
      "007365676d656e7400640000000000000000000000010500000000000400efbe"
      "adde000000000000");
}

TEST(WireGolden, ItemResponse) {
  expect_golden("item-response", Codec{}, golden_item_response(),
                "0101110000003131000000000000ffffffffffffff7f00010400000000000000"
      "00000100030004006b696e64020500766964656f07007175616c697479010000"
      "00000000e83f07007365676d656e7400670000000000000084030000cefaedfe"
      "00000000");
}

TEST(WireGolden, V2CompressedResponse) {
  WireConfig cfg;
  cfg.compress_entries = true;
  cfg.chunk_bitmap = true;
  cfg.metadata_entry_bytes = 0;
  expect_golden("v2-compressed-metadata-response", Codec(cfg),
                golden_metadata_response(), "4102000b0000009999000000000000ffffffffffffff7f000105000000000304"
      "006b696e6407007175616c69747907007365676d656e74030300020005007669"
      "64656f0101000000000000e83f0200c8010300020500000101000000000000e8"
      "3f0200ca010300020500000101000000000000e83f0200cc0100000000");
  expect_golden("v2-cdi-bitmap-response", Codec(cfg), golden_cdi_response(),
                "4104020d0000007777000000000000ffffffffffffff7f000103000000010300"
      "04006b696e64020500766964656f07007175616c69747901000000000000e83f"
      "07007365676d656e740064000000000000000000020100020302030409000000");
}

TEST(WireGolden, TraceContextQuery) {
  WireConfig cfg;
  cfg.carry_trace_context = true;
  Message m = golden_metadata_query();
  m.trace =
      TraceContext{.trace_id = 0x1234, .parent_span = 0x9abc, .origin = 5,
                   .hop = 2};
  expect_golden("trace-context-query", Codec(cfg), m, "8000050000003412000000000000404b4c000000000004020100000002000000"
      "0002000600726567696f6e00020500706c617a6105006167655f7303003c0000"
      "0000000000ae0000000100050000072a00000000000000000004000082000001"
      "0200000000000000000040000000000000400000000000800020000000000040"
      "8022080000000020000000000000101000000000000000180000000000000004"
      "0000000000000022000000000080000000000000000000000000000000000100"
      "1004010000000000000000040000000000000000080000000000000000000000"
      "0280000040000020010010000000000000000000000000000034120000000000"
      "00bc9a0000000000000500000002");
}

TEST(WireGolden, TraceContextPlusV2Extensions) {
  WireConfig cfg;
  cfg.carry_trace_context = true;
  cfg.delta_bloom = true;
  cfg.chunk_bitmap = true;
  const GoldenDeltaFrames frames = golden_delta_frames();
  Message m = golden_v2_query(frames.full);
  m.trace =
      TraceContext{.trace_id = 0x1234, .parent_span = 0x9abc, .origin = 5,
                   .hop = 2};
  expect_golden("trace-plus-v2-query", Codec(cfg), m, "c00503050000003412000000000000404b4c0000000000040001030004006b69"
      "6e64020500766964656f07007175616c69747901000000000000e83f07007365"
      "676d656e74006400000000000000000034120000000000000100018005070700"
      "0000000000006357d5d89536613f0a0000000000004000000100800000000000"
      "0001000000000000000201000000040004200001000000020000004001000201"
      "1000000000010000080100000000010004400000000000010120000008000000"
      "01100010800000000002088b3412000000000000bc9a00000000000005000000"
      "02");
}

// The golden Bloom-sync frames themselves, at the frame codec level.
TEST(WireGolden, BloomDeltaFrames) {
  const GoldenDeltaFrames frames = golden_delta_frames();
  ByteWriter wf;
  frames.full.encode(wf);
  EXPECT_EQ(hex(wf.bytes()), "341200000000000001000180050707000000000000006357d5d89536613f0a00"
            "0000000000400000010080000000000000010000000000000002010000000400"
            "0420000100000002000000400100020110000000000100000801000000000100"
            "04400000000000010120000008000000011000108000000000");
  ByteWriter wd;
  frames.delta.encode(wd);
  EXPECT_EQ(hex(wd.bytes()), "34120000000000000101006357d5d89536613f66380e188d63108d0900000800"
            "0000400000020000000000020002010000000400042210010000100200000040"
            "0180020110000000000100000805000000000100044000002000200101200000"
            "09008001011040108000000000");
}

}  // namespace
}  // namespace pds::net
