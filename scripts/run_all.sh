#!/usr/bin/env bash
# Build, test and regenerate every paper table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
./build/tools/pdslint   # determinism/invariant gate (DESIGN.md §12)
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done
