// Progress-over-time curves (supplementary to the paper's scalar Latency
// metric): how long a consumer waits to reach each fraction of the final
// result, for multi-round discovery (5,000 entries) and 20 MB PDR. The paper
// reports only the time of the *last* arrival; these deciles show the shape
// behind it — the bulk arrives early, the tail (loss recovery, later rounds)
// dominates the headline latency.
#include <algorithm>
#include <utility>

#include "bench_common.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds {
namespace {

// Time at which `fraction` of the final arrivals had been seen.
template <typename ArrivalMap>
double time_to_fraction(const ArrivalMap& arrivals, double fraction) {
  std::vector<double> times;
  times.reserve(arrivals.size());
  for (const auto& [key, when] : arrivals) {
    times.push_back(when.as_seconds());
  }
  std::sort(times.begin(), times.end());
  if (times.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      fraction * static_cast<double>(times.size() - 1));
  return times[idx];
}

constexpr double kFractions[] = {0.25, 0.50, 0.75, 0.90, 0.99, 1.0};

int run() {
  obs::Report report = bench::make_report(
      "tab_timeline",
      "Progress timelines — time to reach X% of the final result",
      "(supplementary; paper reports only the final-arrival latency)");
  report.set_param("seed", 1);

  tools::CausalReport pdd_causal;
  tools::CausalReport pdr_causal;

  {
    core::PdsConfig pds;
    wl::GridSetup setup;
    setup.pds = pds;
    wl::Grid grid = wl::make_grid(setup, 1);
    bench::CausalCapture capture;
    grid.scenario->set_tracer(capture.tracer());
    Rng rng(11);
    auto entries = wl::make_sample_descriptors(5000, wl::SampleSpace{}, rng);
    auto nodes = grid.scenario->nodes();
    wl::distribute_metadata(nodes, entries, 1, rng, {grid.center});
    const core::DiscoverySession& session = grid.center_node().discover(
        core::Filter{}, [](const core::DiscoverySession::Result&) {});
    grid.scenario->run_until(SimTime::seconds(60));
    pdd_causal = capture.analyze();

    std::printf("PDD, 5,000 entries (final recall %.3f):\n",
                static_cast<double>(session.arrivals().size()) / 5000.0);
    report.begin_table("pdd", {"fraction", "time (s)"});
    for (double f : kFractions) {
      report.point()
          .param("fraction", util::Table::num(f * 100, 0) + "%")
          .metric("time_s", time_to_fraction(session.arrivals(), f), 2);
    }
    report.print_table();
    report.begin_section("pdd_summary");
    report.point().hidden_metric(
        "final_recall",
        static_cast<double>(session.arrivals().size()) / 5000.0);
  }

  {
    core::PdsConfig pds;
    wl::GridSetup setup;
    setup.radio = sim::clean_radio_profile();
    setup.pds = pds;
    wl::Grid grid = wl::make_grid(setup, 1);
    bench::CausalCapture capture;
    grid.scenario->set_tracer(capture.tracer());
    Rng rng(13);
    const auto item =
        wl::make_chunked_item("clip", 20u << 20, pds.chunk_size_bytes);
    auto nodes = grid.scenario->nodes();
    wl::distribute_chunks(nodes, item, 20u << 20, pds.chunk_size_bytes, 1,
                          rng, {grid.center});
    const core::PdrSession& session = grid.center_node().retrieve(
        item, [](const core::RetrievalResult&) {});
    grid.scenario->run_until(SimTime::seconds(600));
    pdr_causal = capture.analyze();

    std::printf("\nPDR, 20 MB item (%zu/80 chunks):\n",
                session.chunks().size());
    report.begin_table("pdr", {"fraction", "time (s)"});
    for (double f : kFractions) {
      report.point()
          .param("fraction", util::Table::num(f * 100, 0) + "%")
          .metric("time_s", time_to_fraction(session.arrivals(), f), 1);
    }
    report.print_table();
    report.begin_section("pdr_summary");
    report.point().hidden_metric(
        "chunks", static_cast<double>(session.chunks().size()));
  }

  // Causal span-DAG health + critical-path shape for both phases
  // (DESIGN.md §14): the tail the deciles above expose should correspond to
  // long air/retx-dominated critical paths, not to orphaned spans.
  std::printf("\ncausal critical paths:\n");
  report.begin_table("causal",
                     {"phase", "dominant edge", "traces", "with path",
                      "orphans", "dropped", "cp hops p50", "cp hops p99",
                      "cp len p50 (ms)", "cp len p99 (ms)"});
  const std::pair<const char*, const tools::CausalReport*> phases[] = {
      {"pdd", &pdd_causal}, {"pdr", &pdr_causal}};
  for (const auto& [phase, causal] : phases) {
    obs::Report::Point& point = report.point().param("phase", phase);
    bench::add_causal_point(point, *causal);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
