// Progress-over-time curves (supplementary to the paper's scalar Latency
// metric): how long a consumer waits to reach each fraction of the final
// result, for multi-round discovery (5,000 entries) and 20 MB PDR. The paper
// reports only the time of the *last* arrival; these deciles show the shape
// behind it — the bulk arrives early, the tail (loss recovery, later rounds)
// dominates the headline latency.
#include <algorithm>

#include "bench_common.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds {
namespace {

// Time at which `fraction` of the final arrivals had been seen.
template <typename ArrivalMap>
double time_to_fraction(const ArrivalMap& arrivals, double fraction) {
  std::vector<double> times;
  times.reserve(arrivals.size());
  for (const auto& [key, when] : arrivals) {
    times.push_back(when.as_seconds());
  }
  std::sort(times.begin(), times.end());
  if (times.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      fraction * static_cast<double>(times.size() - 1));
  return times[idx];
}

constexpr double kFractions[] = {0.25, 0.50, 0.75, 0.90, 0.99, 1.0};

int run() {
  obs::Report report = bench::make_report(
      "tab_timeline",
      "Progress timelines — time to reach X% of the final result",
      "(supplementary; paper reports only the final-arrival latency)");
  report.set_param("seed", 1);

  {
    core::PdsConfig pds;
    wl::GridSetup setup;
    setup.pds = pds;
    wl::Grid grid = wl::make_grid(setup, 1);
    Rng rng(11);
    auto entries = wl::make_sample_descriptors(5000, wl::SampleSpace{}, rng);
    auto nodes = grid.scenario->nodes();
    wl::distribute_metadata(nodes, entries, 1, rng, {grid.center});
    const core::DiscoverySession& session = grid.center_node().discover(
        core::Filter{}, [](const core::DiscoverySession::Result&) {});
    grid.scenario->run_until(SimTime::seconds(60));

    std::printf("PDD, 5,000 entries (final recall %.3f):\n",
                static_cast<double>(session.arrivals().size()) / 5000.0);
    report.begin_table("pdd", {"fraction", "time (s)"});
    for (double f : kFractions) {
      report.point()
          .param("fraction", util::Table::num(f * 100, 0) + "%")
          .metric("time_s", time_to_fraction(session.arrivals(), f), 2);
    }
    report.print_table();
    report.begin_section("pdd_summary");
    report.point().hidden_metric(
        "final_recall",
        static_cast<double>(session.arrivals().size()) / 5000.0);
  }

  {
    core::PdsConfig pds;
    wl::GridSetup setup;
    setup.radio = sim::clean_radio_profile();
    setup.pds = pds;
    wl::Grid grid = wl::make_grid(setup, 1);
    Rng rng(13);
    const auto item =
        wl::make_chunked_item("clip", 20u << 20, pds.chunk_size_bytes);
    auto nodes = grid.scenario->nodes();
    wl::distribute_chunks(nodes, item, 20u << 20, pds.chunk_size_bytes, 1,
                          rng, {grid.center});
    const core::PdrSession& session = grid.center_node().retrieve(
        item, [](const core::RetrievalResult&) {});
    grid.scenario->run_until(SimTime::seconds(600));

    std::printf("\nPDR, 20 MB item (%zu/80 chunks):\n",
                session.chunks().size());
    report.begin_table("pdr", {"fraction", "time (s)"});
    for (double f : kFractions) {
      report.point()
          .param("fraction", util::Table::num(f * 100, 0) + "%")
          .metric("time_s", time_to_fraction(session.arrivals(), f), 1);
    }
    report.print_table();
    report.begin_section("pdr_summary");
    report.point().hidden_metric(
        "chunks", static_cast<double>(session.chunks().size()));
  }
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
