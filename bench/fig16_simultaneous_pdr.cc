// Fig. 16 (paper §VI-B.3): PDR with 1–5 simultaneous consumers retrieving
// the same 20 MB item (one initial copy of each chunk).
//
// Paper series: recall 100%; latency and overhead first grow with the
// number of consumers, then stabilize — consumers in the same direction of
// a chunk share its transmissions.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  const int n_runs = bench::runs(2);
  obs::Report report = bench::make_report(
      "fig16_simultaneous_pdr",
      "Fig. 16 — PDR with simultaneous consumers (20 MB item)",
      "recall 100%; latency & overhead rise then stabilize", n_runs);
  report.set_param("item_size_mb", 20);

  report.begin_table("main", {"consumers", "recall", "mean latency (s)",
                              "overhead (MB)"});
  for (const std::size_t consumers : {1u, 2u, 3u, 4u, 5u}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(n_runs, [&](int r) {
      wl::RetrievalGridParams p;
      p.item_size_bytes = 20u * 1024 * 1024;
      p.consumers = consumers;
      p.sequential = false;
      p.horizon = SimTime::seconds(1800);
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_retrieval_grid(p);
    });
    for (const wl::RetrievalOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("consumers", static_cast<std::int64_t>(consumers))
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 1)
        .metric("overhead_mb", overhead, 1);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
