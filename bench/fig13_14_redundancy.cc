// Figs. 13/14 (paper §VI-B.3): PDR vs the MDR baseline as the number of
// copies of each chunk of a 20 MB item grows from 1 to 5.
//
// Paper series: at redundancy 1 MDR is slightly better (10.7 s / 51.34 MB
// vs 13.5 s / 54.22 MB); as copies multiply MDR grows almost linearly
// (27.6 s / 94.23 MB at 5) while PDR stays flat with a slight decrease
// (11.9 s / 45.98 MB at 5) — PDR always retrieves exactly one nearest copy
// of each chunk, MDR cannot fully suppress duplicates on different reverse
// paths.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  const int n_runs = bench::runs(2);
  obs::Report report = bench::make_report(
      "fig13_14_redundancy",
      "Figs. 13/14 — PDR vs MDR vs chunk redundancy (20 MB item)",
      "MDR wins slightly at 1 copy; PDR flat/slightly decreasing, MDR "
      "~linear growth, ~2x PDR at 5 copies", n_runs);
  report.set_param("item_size_mb", 20);

  // One causal capture per (redundancy, method) cell, riding each cell's
  // first seed; the causal section below restates the figure as critical
  // paths — with more copies the nearest holder is closer, so PDR's paths
  // shrink while MDR keeps flooding duplicates down long reverse paths.
  struct CellCausal {
    int redundancy;
    const char* method;
    tools::CausalReport causal;
  };
  std::vector<CellCausal> cells;

  report.begin_table("main", {"redundancy", "method", "recall", "latency (s)",
                              "overhead (MB)"});
  for (const int redundancy : {1, 2, 3, 4, 5}) {
    for (const wl::RetrievalMethod method :
         {wl::RetrievalMethod::kPdr, wl::RetrievalMethod::kMdr}) {
      util::SampleSet recall;
      util::SampleSet latency;
      util::SampleSet overhead;
      bench::CausalCapture capture;
      const auto outs = bench::run_indexed(n_runs, [&](int r) {
        wl::RetrievalGridParams p;
        p.tracer = r == 0 ? capture.tracer() : nullptr;
        p.item_size_bytes = 20u * 1024 * 1024;
        p.redundancy = redundancy;
        p.method = method;
        p.seed = static_cast<std::uint64_t>(r + 2);
        return wl::run_retrieval_grid(p);
      });
      for (const wl::RetrievalOutcome& out : outs) {
        recall.add(out.recall);
        latency.add(out.latency_s);
        overhead.add(out.overhead_mb);
      }
      const char* method_name =
          method == wl::RetrievalMethod::kPdr ? "PDR" : "MDR";
      report.point()
          .param("redundancy", static_cast<std::int64_t>(redundancy))
          .param("method", method_name)
          .metric("recall", recall, 3)
          .metric("latency_s", latency, 1)
          .metric("overhead_mb", overhead, 1);
      cells.push_back({redundancy, method_name, capture.analyze()});
    }
  }
  report.print_table();

  std::printf("\ncausal critical paths (first seed per cell):\n");
  report.begin_table("causal",
                     {"redundancy", "method", "dominant edge", "traces",
                      "with path", "orphans", "dropped", "cp hops p50",
                      "cp hops p99", "cp len p50 (ms)", "cp len p99 (ms)"});
  for (const CellCausal& cell : cells) {
    obs::Report::Point& point =
        report.point()
            .param("redundancy", static_cast<std::int64_t>(cell.redundancy))
            .param("method", cell.method);
    bench::add_causal_point(point, cell.causal);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
