// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/table.h"

namespace pds::bench {

// Seeds averaged per data point. The paper averages over 5 runs; the default
// here keeps each binary within a couple of minutes. Override with
// PDS_BENCH_RUNS.
inline int runs(int dflt = 2) {
  if (const char* env = std::getenv("PDS_BENCH_RUNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

struct Series {
  util::SampleSet recall;
  util::SampleSet latency_s;
  util::SampleSet overhead_mb;
};

// Runs `body(seed)` for `n` seeds and accumulates.
template <typename Body>
Series average(int n, Body&& body) {
  Series s;
  for (int i = 0; i < n; ++i) {
    const auto [recall, latency, overhead] = body(static_cast<std::uint64_t>(i + 1));
    s.recall.add(recall);
    s.latency_s.add(latency);
    s.overhead_mb.add(overhead);
  }
  return s;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary,
                         int runs_used = 0) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("paper reports: %s\n", paper_summary.c_str());
  std::printf("runs per point: %d (PDS_BENCH_RUNS to change)\n\n",
              runs_used > 0 ? runs_used : runs());
}

}  // namespace pds::bench
