// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.h"
#include "obs/trace.h"
#include "parallel_runs.h"
#include "tools/trace_causal.h"
#include "util/stats.h"
#include "util/table.h"

namespace pds::bench {

// Seeds averaged per data point. The paper averages over 5 runs; the default
// here keeps each binary within a couple of minutes. Override with
// PDS_BENCH_RUNS (invalid or non-positive values are fatal, not ignored).
inline int runs(int dflt = 2) {
  return env_positive_int("PDS_BENCH_RUNS", dflt);
}

struct Series {
  util::SampleSet recall;
  util::SampleSet latency_s;
  util::SampleSet overhead_mb;
};

// Runs `body(seed)` for `n` seeds — in parallel across PDS_BENCH_JOBS worker
// threads (each seed gets its own Simulator) — and accumulates in seed order,
// so the merged Series is bit-identical to the old serial loop.
template <typename Body>
Series average(int n, Body&& body) {
  Series s;
  const auto outcomes = run_indexed(n, [&body](int i) {
    return body(static_cast<std::uint64_t>(i + 1));
  });
  for (const auto& [recall, latency, overhead] : outcomes) {
    s.recall.add(recall);
    s.latency_s.add(latency);
    s.overhead_mb.add(overhead);
  }
  return s;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary,
                         int runs_used = 0) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("paper reports: %s\n", paper_summary.c_str());
  std::printf("runs per point: %d (PDS_BENCH_RUNS to change)\n",
              runs_used > 0 ? runs_used : runs());
  std::printf("worker threads: %d (PDS_BENCH_JOBS to change)\n\n", jobs());
}

// Prints the canonical experiment header (byte-identical to the historical
// print_header output) and opens the telemetry Report the binary routes its
// results through.
inline obs::Report make_report(const char* experiment, const char* title,
                               const char* paper, int runs_used = 0) {
  const int n = runs_used > 0 ? runs_used : runs();
  print_header(title, paper, n);
  obs::Report::Options options;
  options.experiment = experiment;
  options.title = title;
  options.paper = paper;
  options.runs = n;
  options.jobs = jobs();
  return obs::Report(std::move(options));
}

// Causal-trace capture for one representative run (DESIGN.md §14): an
// unbounded tracer (drops would invalidate the span DAG and fail the
// causal gate) that benches attach to a single run — usually seed index 0 —
// and then fold into the report's "causal" section via add_causal_point().
// Tracing never perturbs outcomes, so the traced run's metrics are
// bit-identical to an untraced one; the capture only *adds* columns.
class CausalCapture {
 public:
  CausalCapture() : tracer_(/*capacity=*/0) {}

  [[nodiscard]] obs::Tracer* tracer() { return &tracer_; }
  void clear() { tracer_.clear(); }

  // Reconstructs the captured span DAG through the same NDJSON round-trip
  // `pdscli trace critpath` uses, so bench columns can never drift from the
  // CLI's numbers.
  [[nodiscard]] tools::CausalReport analyze() const {
    std::stringstream ss;
    tracer_.write_ndjson(ss);
    std::size_t bad_line = 0;
    const std::vector<tools::ParsedEvent> events =
        tools::read_trace(ss, bad_line);
    return tools::analyze_causal(events);
  }

 private:
  obs::Tracer tracer_;
};

// The trace-wide dominant edge class: the class winning the most per-trace
// "longest edge" votes (ties break lexicographically via map order).
inline std::string dominant_edge_class(const tools::CausalReport& causal) {
  std::string best = "none";
  int best_count = 0;
  for (const auto& [cls, count] : causal.dominant_edges) {
    if (count > best_count) {
      best = cls;
      best_count = count;
    }
  }
  return best;
}

// Appends the causal health + critical-path statistics point for one
// captured run to the report's current section (callers begin_table/
// begin_section "causal" first and may prepend identifying params).
inline obs::Report::Point& add_causal_point(
    obs::Report::Point& point, const tools::CausalReport& causal) {
  return point.param("dominant_edge", dominant_edge_class(causal))
      .metric("traces", static_cast<std::int64_t>(causal.traces.size()))
      .metric("with_path",
              static_cast<std::int64_t>(causal.traces_with_path))
      .metric("orphans", static_cast<std::int64_t>(causal.total_orphans))
      .metric("dropped", static_cast<std::int64_t>(causal.dropped_events))
      .metric("cp_hops_p50", causal.cp_hops_p50, 1)
      .metric("cp_hops_p99", causal.cp_hops_p99, 1)
      .metric("cp_len_ms_p50", causal.cp_len_us_p50 / 1e3, 1)
      .metric("cp_len_ms_p99", causal.cp_len_us_p99 / 1e3, 1);
}

// Writes BENCH_<experiment>.json, announcing on *stderr* so the stdout
// tables stay byte-identical to the pre-telemetry harnesses. Returns the
// binary's exit status: a bench run whose results cannot be recorded fails.
inline int finish(const obs::Report& report) {
  if (!report.write_json()) return 1;
  std::fprintf(stderr, "wrote %s\n", report.json_path().c_str());
  return 0;
}

}  // namespace pds::bench
