// Shared helpers for the experiment harness binaries.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "parallel_runs.h"
#include "tools/stats_analysis.h"
#include "tools/trace_causal.h"
#include "util/stats.h"
#include "util/table.h"

namespace pds::bench {

// Seeds averaged per data point. The paper averages over 5 runs; the default
// here keeps each binary within a couple of minutes. Override with
// PDS_BENCH_RUNS (invalid or non-positive values are fatal, not ignored).
inline int runs(int dflt = 2) {
  return env_positive_int("PDS_BENCH_RUNS", dflt);
}

struct Series {
  util::SampleSet recall;
  util::SampleSet latency_s;
  util::SampleSet overhead_mb;
};

// Runs `body(seed)` for `n` seeds — in parallel across PDS_BENCH_JOBS worker
// threads (each seed gets its own Simulator) — and accumulates in seed order,
// so the merged Series is bit-identical to the old serial loop.
template <typename Body>
Series average(int n, Body&& body) {
  Series s;
  const auto outcomes = run_indexed(n, [&body](int i) {
    return body(static_cast<std::uint64_t>(i + 1));
  });
  for (const auto& [recall, latency, overhead] : outcomes) {
    s.recall.add(recall);
    s.latency_s.add(latency);
    s.overhead_mb.add(overhead);
  }
  return s;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary,
                         int runs_used = 0) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("paper reports: %s\n", paper_summary.c_str());
  std::printf("runs per point: %d (PDS_BENCH_RUNS to change)\n",
              runs_used > 0 ? runs_used : runs());
  std::printf("worker threads: %d (PDS_BENCH_JOBS to change)\n\n", jobs());
}

// Prints the canonical experiment header (byte-identical to the historical
// print_header output) and opens the telemetry Report the binary routes its
// results through.
inline obs::Report make_report(const char* experiment, const char* title,
                               const char* paper, int runs_used = 0) {
  const int n = runs_used > 0 ? runs_used : runs();
  print_header(title, paper, n);
  obs::Report::Options options;
  options.experiment = experiment;
  options.title = title;
  options.paper = paper;
  options.runs = n;
  options.jobs = jobs();
  return obs::Report(std::move(options));
}

// Causal-trace capture for one representative run (DESIGN.md §14): an
// unbounded tracer (drops would invalidate the span DAG and fail the
// causal gate) that benches attach to a single run — usually seed index 0 —
// and then fold into the report's "causal" section via add_causal_point().
// Tracing never perturbs outcomes, so the traced run's metrics are
// bit-identical to an untraced one; the capture only *adds* columns.
class CausalCapture {
 public:
  CausalCapture() : tracer_(/*capacity=*/0) {}

  [[nodiscard]] obs::Tracer* tracer() { return &tracer_; }
  void clear() { tracer_.clear(); }

  // Reconstructs the captured span DAG through the same NDJSON round-trip
  // `pdscli trace critpath` uses, so bench columns can never drift from the
  // CLI's numbers.
  [[nodiscard]] tools::CausalReport analyze() const {
    std::stringstream ss;
    tracer_.write_ndjson(ss);
    std::size_t bad_line = 0;
    const std::vector<tools::ParsedEvent> events =
        tools::read_trace(ss, bad_line);
    return tools::analyze_causal(events);
  }

 private:
  obs::Tracer tracer_;
};

// The trace-wide dominant edge class: the class winning the most per-trace
// "longest edge" votes (ties break lexicographically via map order).
inline std::string dominant_edge_class(const tools::CausalReport& causal) {
  std::string best = "none";
  int best_count = 0;
  for (const auto& [cls, count] : causal.dominant_edges) {
    if (count > best_count) {
      best = cls;
      best_count = count;
    }
  }
  return best;
}

// Appends the causal health + critical-path statistics point for one
// captured run to the report's current section (callers begin_table/
// begin_section "causal" first and may prepend identifying params).
inline obs::Report::Point& add_causal_point(
    obs::Report::Point& point, const tools::CausalReport& causal) {
  return point.param("dominant_edge", dominant_edge_class(causal))
      .metric("traces", static_cast<std::int64_t>(causal.traces.size()))
      .metric("with_path",
              static_cast<std::int64_t>(causal.traces_with_path))
      .metric("orphans", static_cast<std::int64_t>(causal.total_orphans))
      .metric("dropped", static_cast<std::int64_t>(causal.dropped_events))
      .metric("cp_hops_p50", causal.cp_hops_p50, 1)
      .metric("cp_hops_p99", causal.cp_hops_p99, 1)
      .metric("cp_len_ms_p50", causal.cp_len_us_p50 / 1e3, 1)
      .metric("cp_len_ms_p99", causal.cp_len_us_p99 / 1e3, 1);
}

// Flight-recorder capture for one representative run (DESIGN.md §15): a
// sim-time sampler + wall-clock profiler a bench attaches to a single run —
// usually seed index 0 — and folds into the report's "stats" section via
// add_stats_point(). Sampling only reads state, so the sampled run's
// outcomes are bit-identical to an unsampled one.
class StatsCapture {
 public:
  explicit StatsCapture(SimTime interval = SimTime::seconds(1.0))
      : sampler_(interval) {}

  [[nodiscard]] obs::TimeSeries* sampler() { return &sampler_; }
  [[nodiscard]] obs::Profiler* profiler() { return &profiler_; }
  void reset() { sampler_.reset(); }

  // Serialized capture: the series body plus the trailing profile line.
  // include_wall=false is the deterministic projection benches byte-compare
  // for the `timeseries-deterministic` gate (no profile line either — wall
  // durations are never deterministic).
  [[nodiscard]] std::string ndjson(bool include_wall = true) const {
    std::string out = sampler_.ndjson(include_wall);
    if (include_wall) {
      out += obs::Profiler::profile_json_line(profiler_.snapshot());
    }
    return out;
  }

  // Parses the capture back through the same reader `pdscli stats` uses, so
  // bench report columns can never drift from the CLI's numbers. A capture
  // this class itself serialized must round-trip; failure is a bench bug.
  [[nodiscard]] tools::ParsedSeries analyze() const {
    std::string error;
    std::optional<tools::ParsedSeries> parsed =
        tools::parse_timeseries(ndjson(), &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "stats capture failed to round-trip: %s\n",
                   error.c_str());
      std::exit(1);
    }
    return *std::move(parsed);
  }

  // Writes the full capture to `path` (the STATS_<experiment>.ndjson
  // artifact CI uploads); false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << ndjson();
    return static_cast<bool>(out);
  }

 private:
  obs::TimeSeries sampler_;
  obs::Profiler profiler_;
};

// Appends the flight-recorder health + resource-peak statistics for one
// captured run to the report's current section (callers begin_section
// "stats" first and may prepend identifying params such as the determinism
// A/B verdict). `util_ceiling` is the bench's concurrent-transmission
// ceiling (node count for grid scenarios): derived channel utilization is
// the average number of concurrent transmissions per interval, which can
// never exceed it — the `channel-utilization-bounded` gate checks the
// verdict recorded here.
inline obs::Report::Point& add_stats_point(obs::Report::Point& point,
                                           const tools::ParsedSeries& s,
                                           double util_ceiling) {
  const std::vector<tools::SeriesSummary> sums = tools::summarize_series(s);
  const auto peak = [&sums](const char* name) -> double {
    for (const tools::SeriesSummary& sum : sums) {
      if (sum.name == name) return sum.peak;
    }
    return 0.0;
  };
  const std::vector<double> util = tools::channel_utilization(s);
  double util_max = 0.0;
  double util_min = 0.0;
  if (!util.empty()) {
    util_max = *std::max_element(util.begin(), util.end());
    util_min = *std::min_element(util.begin(), util.end());
  }
  const bool util_bounded = util_min >= 0.0 && util_max <= util_ceiling;
  return point.param("util_bounded", util_bounded, util_bounded ? "yes" : "NO")
      .metric("rows", static_cast<std::int64_t>(s.rows.size()))
      .metric("channel_util_max", util_max, 3)
      .metric("peak_rss_mb", peak("rss.peak_mb"), 1)
      .metric("queue_peak", peak("sched.queue_len"), 0)
      .metric("inflight_peak", peak("transport.inflight"), 0)
      .metric("chunk_bytes_peak_mb", peak("store.chunk_bytes") / 1e6, 1);
}

// Writes BENCH_<experiment>.json, announcing on *stderr* so the stdout
// tables stay byte-identical to the pre-telemetry harnesses. Returns the
// binary's exit status: a bench run whose results cannot be recorded fails.
inline int finish(const obs::Report& report) {
  if (!report.write_json()) return 1;
  std::fprintf(stderr, "wrote %s\n", report.json_path().c_str());
  return 0;
}

}  // namespace pds::bench
