// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/report.h"
#include "parallel_runs.h"
#include "util/stats.h"
#include "util/table.h"

namespace pds::bench {

// Seeds averaged per data point. The paper averages over 5 runs; the default
// here keeps each binary within a couple of minutes. Override with
// PDS_BENCH_RUNS (invalid or non-positive values are fatal, not ignored).
inline int runs(int dflt = 2) {
  return env_positive_int("PDS_BENCH_RUNS", dflt);
}

struct Series {
  util::SampleSet recall;
  util::SampleSet latency_s;
  util::SampleSet overhead_mb;
};

// Runs `body(seed)` for `n` seeds — in parallel across PDS_BENCH_JOBS worker
// threads (each seed gets its own Simulator) — and accumulates in seed order,
// so the merged Series is bit-identical to the old serial loop.
template <typename Body>
Series average(int n, Body&& body) {
  Series s;
  const auto outcomes = run_indexed(n, [&body](int i) {
    return body(static_cast<std::uint64_t>(i + 1));
  });
  for (const auto& [recall, latency, overhead] : outcomes) {
    s.recall.add(recall);
    s.latency_s.add(latency);
    s.overhead_mb.add(overhead);
  }
  return s;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary,
                         int runs_used = 0) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("paper reports: %s\n", paper_summary.c_str());
  std::printf("runs per point: %d (PDS_BENCH_RUNS to change)\n",
              runs_used > 0 ? runs_used : runs());
  std::printf("worker threads: %d (PDS_BENCH_JOBS to change)\n\n", jobs());
}

// Prints the canonical experiment header (byte-identical to the historical
// print_header output) and opens the telemetry Report the binary routes its
// results through.
inline obs::Report make_report(const char* experiment, const char* title,
                               const char* paper, int runs_used = 0) {
  const int n = runs_used > 0 ? runs_used : runs();
  print_header(title, paper, n);
  obs::Report::Options options;
  options.experiment = experiment;
  options.title = title;
  options.paper = paper;
  options.runs = n;
  options.jobs = jobs();
  return obs::Report(std::move(options));
}

// Writes BENCH_<experiment>.json, announcing on *stderr* so the stdout
// tables stay byte-identical to the pre-telemetry harnesses. Returns the
// binary's exit status: a bench run whose results cannot be recorded fails.
inline int finish(const obs::Report& report) {
  if (!report.write_json()) return 1;
  std::fprintf(stderr, "wrote %s\n", report.json_path().c_str());
  return 0;
}

}  // namespace pds::bench
