// Figs. 9/10 (paper §VI-B.2): PDD recall and latency under trace-driven
// mobility, with the observed join/leave/move rates scaled ×0.5–×2, for
// both observed locations (Student Center 120×120 m² and Classrooms
// 20×20 m²).
//
// Paper series: recall stays near 100% and latency within 2 s (overhead
// within 3 MB) across the whole frequency sweep; the Classroom results are
// similar.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

void sweep(obs::Report& report, const char* section, const char* name,
           const sim::MobilityParams& base, double range_m) {
  std::printf("\n-- %s --\n", name);
  report.begin_table(
      section, {"mobility x", "recall", "latency (s)", "overhead (MB)"});
  for (const double mult : {0.5, 1.0, 1.5, 2.0}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(bench::runs(3), [&](int r) {
      wl::PddMobilityParams p;
      p.mobility = base;
      p.mobility.frequency_multiplier = mult;
      p.mobility.duration = SimTime::minutes(5);
      p.range_m = range_m;
      p.metadata_count = 5000;
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_pdd_mobility(p);
    });
    for (const wl::PddOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("mobility_multiplier", mult, 1)
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 2)
        .metric("overhead_mb", overhead, 2);
  }
  report.print_table();
}

int run() {
  // The header has always printed the default runs-per-point even though
  // this binary averages over runs(3); construct the Report directly so the
  // JSON records the count actually used while stdout stays unchanged.
  bench::print_header(
      "Figs. 9/10 — PDD under real-world mobility traces",
      "Student Center: recall ~100%, latency < 2 s, overhead < 3 MB across "
      "x0.5-x2; Classrooms similar");
  obs::Report::Options options;
  options.experiment = "fig09_10_mobility_pdd";
  options.title = "Figs. 9/10 — PDD under real-world mobility traces";
  options.paper =
      "Student Center: recall ~100%, latency < 2 s, overhead < 3 MB across "
      "x0.5-x2; Classrooms similar";
  options.runs = bench::runs(3);
  options.jobs = bench::jobs();
  obs::Report report{std::move(options)};
  report.set_param("entries", 5000);
  sweep(report, "student_center",
        "Student Center (120x120 m², 20 people, 1/1/4 per min)",
        sim::student_center_params(), 40.0);
  sweep(report, "classroom",
        "Classrooms (20x20 m², 30 people, 0.5/0.5/0.5 per min)",
        sim::classroom_params(), 15.0);
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
