// Fig. 5 (paper §VI-B.2): recall of multi-round PDD as a function of the
// recent time window T and the new-round threshold T_d (with T_r = 0), plus
// the T_r sweep the paper reports as flat.
//
// Paper series: recall rises with T and stabilizes once T reaches 0.6–0.8 s;
// smaller T_d gives higher recall (1.0 at T_d=0 vs 0.95 at T_d=0.3) at the
// cost of more rounds (5.6 s / 5.13 MB at T_d=0 vs 3.4 s / 3.85 MB at 0.3);
// varying T_r has no significant impact.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

wl::PddOutcome run_with(double window_s, double td, double tr,
                        std::uint64_t seed) {
  wl::PddGridParams p;
  p.metadata_count = 5000;
  p.pds.window = SimTime::seconds(window_s);
  p.pds.threshold_td = td;
  p.pds.threshold_tr = tr;
  p.seed = seed;
  return wl::run_pdd_grid(p);
}

int run() {
  obs::Report report = bench::make_report(
      "fig05_round_params",
      "Fig. 5 — multi-round PDD recall vs window T and threshold T_d",
      "recall stabilizes for T >= 0.6-0.8 s; T_d=0 -> recall 1.0 "
      "(5.6 s, 5.13 MB), T_d=0.3 -> 0.95 (3.4 s, 3.85 MB); T_r flat");
  report.set_param("entries", 5000);

  report.begin_table("window_td", {"T (s)", "T_d", "recall", "latency (s)",
                                   "overhead (MB)", "rounds"});
  for (const double td : {0.0, 0.3}) {
    for (const double window : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
      util::SampleSet recall;
      util::SampleSet latency;
      util::SampleSet overhead;
      util::SampleSet rounds;
      const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
        return run_with(window, td, 0.0, static_cast<std::uint64_t>(r + 1));
      });
      for (const wl::PddOutcome& out : outs) {
        recall.add(out.recall);
        latency.add(out.latency_s);
        overhead.add(out.overhead_mb);
        rounds.add(out.rounds);
      }
      report.point()
          .param("window_s", window, 1)
          .param("td", td, 1)
          .metric("recall", recall, 3)
          .metric("latency_s", latency, 2)
          .metric("overhead_mb", overhead, 2)
          .metric("rounds", rounds, 1);
    }
  }
  report.print_table();

  std::printf("\nT_r sweep at T = 1 s, T_d = 0 (paper: no significant "
              "impact):\n");
  report.begin_table("tr_sweep",
                     {"T_r", "recall", "latency (s)", "overhead (MB)"});
  for (const double tr : {0.0, 0.05, 0.1, 0.2}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      return run_with(1.0, 0.0, tr, static_cast<std::uint64_t>(r + 1));
    });
    for (const wl::PddOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("tr", tr, 2)
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 2)
        .metric("overhead_mb", overhead, 2);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
