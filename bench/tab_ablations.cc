// Ablations of the paper's three key mechanisms (DESIGN.md §5): lingering
// queries, mixedcast, en-route Bloom rewriting, opportunistic overhearing
// caches and GAP load balancing. Each row flips one toggle while the rest of
// the system stays at paper defaults.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

struct Variant {
  const char* name;
  void (*apply)(core::PdsConfig&);
};

int run() {
  obs::Report report = bench::make_report(
      "tab_ablations", "Ablations — each mechanism off vs full PDS",
      "each mechanism exists to cut overhead/latency; turning one off "
      "should not break recall but should cost transmissions");

  const Variant variants[] = {
      {"full PDS (baseline)", [](core::PdsConfig&) {}},
      {"no lingering queries",
       [](core::PdsConfig& c) { c.enable_lingering_queries = false; }},
      {"no mixedcast", [](core::PdsConfig& c) { c.enable_mixedcast = false; }},
      {"no Bloom rewriting",
       [](core::PdsConfig& c) { c.enable_bloom_rewriting = false; }},
      {"no overhearing cache",
       [](core::PdsConfig& c) { c.enable_overhearing_cache = false; }},
  };

  // Each mechanism pays off in a different workload: mixedcast and Bloom
  // rewriting when consumers overlap in time, overhearing caches when they
  // come one after another. Run both.
  for (const bool sequential : {false, true}) {
    std::printf("PDD, 5,000 entries, redundancy 2, 3 %s consumers:\n",
                sequential ? "sequential" : "simultaneous");
    report.begin_table(sequential ? "pdd_sequential" : "pdd_simultaneous",
                       {"variant", "recall", "latency (s)", "overhead (MB)",
                        "rounds"});
    for (const Variant& v : variants) {
      util::SampleSet recall;
      util::SampleSet latency;
      util::SampleSet overhead;
      util::SampleSet rounds;
      for (int r = 0; r < bench::runs(); ++r) {
        wl::PddGridParams p;
        p.metadata_count = 5000;
        p.redundancy = 2;
        p.consumers = 3;
        p.sequential = sequential;
        p.seed = static_cast<std::uint64_t>(r + 1);
        v.apply(p.pds);
        const wl::PddOutcome out = wl::run_pdd_grid(p);
        recall.add(out.recall);
        latency.add(out.latency_s);
        overhead.add(out.overhead_mb);
        rounds.add(out.rounds);
      }
      report.point()
          .param("variant", v.name)
          .metric("recall", recall, 3)
          .metric("latency_s", latency, 2)
          .metric("overhead_mb", overhead, 2)
          .metric("rounds", rounds, 1);
    }
    report.print_table();
    std::printf("\n");
  }

  std::printf(
      "\nPDR, 10 MB item, redundancy 3 — GAP balancing vs naive nearest:\n");
  report.begin_table("pdr_gap",
                     {"variant", "recall", "latency (s)", "overhead (MB)"});
  for (const bool balanced : {true, false}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    for (int r = 0; r < bench::runs(1); ++r) {
      wl::RetrievalGridParams p;
      p.item_size_bytes = 10u * 1024 * 1024;
      p.redundancy = 3;
      p.pds.enable_gap_balancing = balanced;
      p.seed = static_cast<std::uint64_t>(r + 1);
      const wl::RetrievalOutcome out = wl::run_retrieval_grid(p);
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("variant",
               balanced ? "min-max GAP balancing" : "naive nearest")
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 1)
        .metric("overhead_mb", overhead, 1);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
