// §VI-B text: saturation of single-round PDD *without* ack/retransmission
// under growing metadata amounts and redundancy.
//
// Paper series: with one copy per entry recall stays ≈0.35 up to ~10,000
// entries and degrades beyond (≈0.20 at 20,000); with two copies ≈0.55 up to
// ~5,000 entries. 5,000 entries is the paper's "normal load".
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  obs::Report report = bench::make_report(
      "tab_saturation", "Saturation — single-round PDD without ack (10×10 grid)",
      "1 copy: ~0.35 recall up to 10k entries, ~0.20 at 20k; 2 copies: "
      "~0.55 up to 5k");

  // The saturated 20k-entry / 2-copy point's first seed is flight-recorded:
  // single-round no-ack PDD at 20k entries is the highest channel contention
  // any bench drives, so its utilization summary is the interesting input to
  // the channel-utilization-bounded gate.
  bench::StatsCapture capture;
  report.begin_table("main", {"entries", "redundancy", "recall",
                              "latency (s)", "overhead (MB)"});
  for (const int redundancy : {1, 2}) {
    for (const std::size_t entries : {2500u, 5000u, 10000u, 20000u}) {
      const bench::Series s =
          bench::average(bench::runs(), [&](std::uint64_t seed) {
            wl::PddGridParams p;
            p.metadata_count = entries;
            p.redundancy = redundancy;
            p.multi_round = false;
            p.ack = false;
            p.seed = seed;
            if (seed == 1 && entries == 20000u && redundancy == 2) {
              p.sampler = capture.sampler();
              p.profiler = capture.profiler();
            }
            const wl::PddOutcome out = wl::run_pdd_grid(p);
            return std::tuple{out.recall, out.latency_s, out.overhead_mb};
          });
      report.point()
          .param("entries", static_cast<std::int64_t>(entries))
          .param("redundancy", static_cast<std::int64_t>(redundancy))
          .metric("recall", s.recall, 3)
          .metric("latency_s", s.latency_s, 2)
          .metric("overhead_mb", s.overhead_mb, 2);
    }
  }
  report.print_table();

  report.begin_section("stats");
  const tools::ParsedSeries parsed = capture.analyze();
  obs::Report::Point& stats_point =
      report.point()
          .param("entries", static_cast<std::int64_t>(20000))
          .param("redundancy", static_cast<std::int64_t>(2));
  // 10x10 default grid: 100 nodes bound concurrent transmissions.
  bench::add_stats_point(stats_point, parsed, 100.0);
  std::printf("\nflight recorder: %zu rows at the saturated point\n",
              parsed.rows.size());
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
