// Thread-pool helper that fans independent seeded runs out over worker
// threads.
//
// Every experiment run builds its own Simulator (own event queue, own RNG
// tree), so runs share no mutable state and are embarrassingly parallel; the
// only ordering requirement is that results are *merged* in seed order so a
// parallel sweep is bit-identical to the serial loop it replaces.
//
// Worker count comes from PDS_BENCH_JOBS, defaulting to the hardware
// concurrency. PDS_BENCH_JOBS=1 degrades to a plain serial loop on the
// calling thread.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace pds::bench {

// Strictly parses a positive integer from environment variable `name`;
// returns `dflt` when the variable is unset. A set-but-invalid value
// (non-numeric, trailing junk, non-positive, out of range) is a fatal
// configuration error — running a sweep with a silently-substituted default
// produces results that claim an average the user never asked for.
inline int env_positive_int(const char* name, int dflt) {
  const char* env = std::getenv(name);
  if (env == nullptr) return dflt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v <= 0 ||
      v > 1'000'000) {
    std::fprintf(stderr, "%s must be a positive integer, got \"%s\"\n", name,
                 env);
    std::exit(2);
  }
  return static_cast<int>(v);
}

// Strict real-valued sibling of env_positive_int — same contract: unset
// means `dflt`, a set-but-invalid value (non-numeric, trailing junk,
// negative, out of range) is fatal. Zero is allowed: perf-floor variables
// use 0 to mean "report only".
inline double env_nonneg_double(const char* name, double dflt) {
  const char* env = std::getenv(name);
  if (env == nullptr) return dflt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || errno == ERANGE || v < 0.0) {
    std::fprintf(stderr, "%s must be a non-negative number, got \"%s\"\n",
                 name, env);
    std::exit(2);
  }
  return v;
}

// Worker threads used for multi-seed sweeps.
inline int jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return env_positive_int("PDS_BENCH_JOBS",
                          hc == 0 ? 1 : static_cast<int>(hc));
}

// Runs `body(i)` for i in [0, n) across jobs() worker threads and returns
// the results indexed by i — the same vector a serial loop would produce,
// regardless of completion order. The first exception thrown by any body is
// rethrown on the calling thread after all workers finish.
template <typename Body>
auto run_indexed(int n, Body&& body) -> std::vector<decltype(body(0))> {
  using Result = decltype(body(0));
  std::vector<Result> results(static_cast<std::size_t>(n > 0 ? n : 0));
  if (n <= 0) return results;
  const int workers = std::min(jobs(), n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) results[static_cast<std::size_t>(i)] = body(i);
    return results;
  }
  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          results[static_cast<std::size_t>(i)] = body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace pds::bench
