// google-benchmark microbenchmarks for the hot primitives: Bloom filter
// operations, descriptor hashing, data-store matching, wire codec, GAP
// assignment and the event queue.
//
// `micro_primitives --trace-overhead-gate` instead runs the tracer cost
// gate: a full PDD experiment with the tracer compiled in but disabled must
// cost <PDS_TRACE_OVERHEAD_MAX_PCT% (default 1%) over the same run with no
// tracer attached. Exit 0 = pass, 1 = fail.
//
// `micro_primitives --stats-overhead-gate` gates the flight-recorder seams
// the same way: a detached sampler/profiler (the default in every
// experiment) must cost <PDS_STATS_OVERHEAD_MAX_PCT% (default 1%).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstring>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "parallel_runs.h"
#include "core/data_store.h"
#include "net/bloom_delta.h"
#include "net/codec.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "util/bloom_filter.h"
#include "util/gap_assign.h"
#include "workload/experiment.h"
#include "workload/generator.h"

namespace pds {
namespace {

void BM_BloomInsert(benchmark::State& state) {
  util::BloomFilter f = util::BloomFilter::with_capacity(
      static_cast<std::size_t>(state.range(0)), 0.01, 1);
  Rng rng(1);
  for (auto _ : state) {
    f.insert(rng.next_u64());
  }
}
BENCHMARK(BM_BloomInsert)->Arg(1000)->Arg(100000);

void BM_BloomQuery(benchmark::State& state) {
  util::BloomFilter f = util::BloomFilter::with_capacity(
      static_cast<std::size_t>(state.range(0)), 0.01, 1);
  Rng rng(1);
  for (std::int64_t i = 0; i < state.range(0); ++i) f.insert(rng.next_u64());
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.maybe_contains(probe++));
  }
}
BENCHMARK(BM_BloomQuery)->Arg(1000)->Arg(100000);

void BM_DescriptorEntryKey(benchmark::State& state) {
  Rng rng(2);
  const auto entries =
      wl::make_sample_descriptors(1000, wl::SampleSpace{}, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    // Fresh copy defeats the key memoization so the canonical encoding and
    // hash are measured.
    core::DataDescriptor d = entries[i++ % entries.size()];
    benchmark::DoNotOptimize(d.entry_key());
  }
}
BENCHMARK(BM_DescriptorEntryKey);

void BM_DataStoreMatchAll(benchmark::State& state) {
  core::DataStore store;
  Rng rng(3);
  for (auto& d : wl::make_sample_descriptors(
           static_cast<std::size_t>(state.range(0)), wl::SampleSpace{}, rng)) {
    store.insert_metadata(d, true, SimTime::zero(), SimTime::zero());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.match_metadata(core::Filter{}, SimTime::zero()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataStoreMatchAll)->Arg(1000)->Arg(10000);

void BM_DataStoreMatchFiltered(benchmark::State& state) {
  core::DataStore store;
  Rng rng(4);
  for (auto& d :
       wl::make_sample_descriptors(10000, wl::SampleSpace{}, rng)) {
    store.insert_metadata(d, true, SimTime::zero(), SimTime::zero());
  }
  core::Filter f;
  f.where_range("x", 10.0, 20.0).where_range("y", 10.0, 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.match_metadata(f, SimTime::zero()));
  }
}
BENCHMARK(BM_DataStoreMatchFiltered);

void BM_CodecEncodeResponse(benchmark::State& state) {
  Rng rng(5);
  net::Message m;
  m.type = net::MessageType::kResponse;
  m.kind = net::ContentKind::kMetadata;
  m.response_id = ResponseId(1);
  m.sender = NodeId(1);
  m.receivers = {NodeId(2)};
  for (auto& d : wl::make_sample_descriptors(45, wl::SampleSpace{}, rng)) {
    m.metadata.push_back(std::move(d));
  }
  const net::Codec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(m));
  }
}
BENCHMARK(BM_CodecEncodeResponse);

void BM_CodecWireSize(benchmark::State& state) {
  Rng rng(6);
  net::Message m;
  m.type = net::MessageType::kResponse;
  m.kind = net::ContentKind::kMetadata;
  m.sender = NodeId(1);
  m.receivers = {NodeId(2)};
  for (auto& d : wl::make_sample_descriptors(45, wl::SampleSpace{}, rng)) {
    m.metadata.push_back(std::move(d));
  }
  const net::Codec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.wire_size(m));
  }
}
BENCHMARK(BM_CodecWireSize);

// -- v2 wire extensions (DESIGN.md §16) --------------------------------------

void BM_CodecEncodeResponseCompressed(benchmark::State& state) {
  Rng rng(15);
  net::Message m;
  m.type = net::MessageType::kResponse;
  m.kind = net::ContentKind::kMetadata;
  m.response_id = ResponseId(1);
  m.sender = NodeId(1);
  m.receivers = {NodeId(2)};
  for (auto& d : wl::make_sample_descriptors(45, wl::SampleSpace{}, rng)) {
    m.metadata.push_back(std::move(d));
  }
  net::WireConfig cfg;
  cfg.compress_entries = true;
  const net::Codec codec(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(m));
  }
}
BENCHMARK(BM_CodecEncodeResponseCompressed);

void BM_Varint(benchmark::State& state) {
  Rng rng(16);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1024; ++i) {
    values.push_back(rng.next_u64() >> (rng.next_u64() % 64));
  }
  for (auto _ : state) {
    ByteWriter w;
    for (const std::uint64_t v : values) w.put_varint(v);
    ByteReader r(w.bytes());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < values.size(); ++i) sum += r.get_varint();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_Varint);

void BM_BloomDeltaRoundTrip(benchmark::State& state) {
  // One discovery round's worth of filter growth, framed and applied: the
  // sender inserts `range(0)` new keys into a shared filter, emits the delta
  // frame, and the receiver cache reconstructs.
  Rng rng(17);
  util::BloomFilter filter =
      util::BloomFilter::with_capacity(20000, 0.01, 42);
  for (int i = 0; i < 5000; ++i) filter.insert(rng.next_u64());
  net::DeltaBloomSender sender;
  net::BloomSyncCache cache;
  (void)cache.apply(sender.next_frame(7, 1, filter));
  for (auto _ : state) {
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      filter.insert(rng.next_u64());
    }
    const net::BloomDeltaFrame frame = sender.next_frame(7, 1, filter);
    ByteWriter w;
    frame.encode(w);
    ByteReader r(w.bytes());
    const net::BloomDeltaFrame decoded = net::BloomDeltaFrame::decode(r);
    benchmark::DoNotOptimize(cache.apply(decoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomDeltaRoundTrip)->Arg(64)->Arg(512);

void BM_ChunkBitmapRoundTrip(benchmark::State& state) {
  // Chunk-bitmap query encode/decode for an 80-chunk request with holes.
  net::Message m;
  m.type = net::MessageType::kQuery;
  m.kind = net::ContentKind::kChunk;
  m.query_id = QueryId(9);
  m.sender = NodeId(1);
  m.receivers = {NodeId(2)};
  m.expire_at = SimTime::seconds(5.0);
  m.ttl = 8;
  core::DataDescriptor item;
  item.set("name", std::string("clip"));
  item.set("chunks", std::int64_t{96});
  m.target = item;
  for (std::uint32_t c = 0; c < 96; c += 2) {
    m.requested_chunks.push_back(ChunkIndex(c));
  }
  net::WireConfig cfg;
  cfg.chunk_bitmap = true;
  const net::Codec codec(cfg);
  for (auto _ : state) {
    const std::vector<std::byte> bytes = codec.encode(m);
    benchmark::DoNotOptimize(codec.decode(bytes));
  }
}
BENCHMARK(BM_ChunkBitmapRoundTrip);

void BM_GapHeuristic(benchmark::State& state) {
  Rng rng(7);
  // The paper's typical per-division instance: ~10 chunks, ~10 neighbors.
  util::GapInstance inst;
  inst.neighbor_count = 10;
  for (int c = 0; c < static_cast<int>(state.range(0)); ++c) {
    std::vector<std::size_t> eligible;
    for (std::size_t n = 0; n < 10; ++n) {
      if (rng.bernoulli(0.4)) eligible.push_back(n);
    }
    if (eligible.empty()) eligible.push_back(0);
    inst.hop.emplace_back(eligible.size(), 1);
    inst.eligible.push_back(std::move(eligible));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::solve_min_max_heuristic(inst));
  }
}
BENCHMARK(BM_GapHeuristic)->Arg(10)->Arg(80);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(8);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(SimTime::micros(static_cast<std::int64_t>(rng.next_u64() % 1000)),
             [] {});
    }
    while (!q.empty()) q.pop().action();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueue);

// Hold-model scheduler benchmark: the queue holds `range(0)` pending events
// (the scenario's steady-state population) and every iteration pops the
// earliest and pushes a replacement at a near-future offset — the classic
// calendar-queue workload. The captured payload is sized like the radio
// completion closure (~80 bytes) so the storage management cost is charged
// realistically. Run for both kinds to quantify calendar-vs-heap.
void scheduler_hold(benchmark::State& state, sim::SchedulerKind kind) {
  sim::EventQueue q(kind);
  Rng rng(9);
  std::array<std::uint64_t, 10> payload{};
  const auto push_one = [&](std::int64_t now_us) {
    // Offsets up to 250 ms: backoffs, airtimes and protocol round timers.
    q.push(SimTime::micros(now_us + 1 +
                           static_cast<std::int64_t>(rng.next_u64() % 250'000)),
           [payload] { benchmark::DoNotOptimize(payload[0]); });
  };
  for (std::int64_t i = 0; i < state.range(0); ++i) push_one(0);
  std::int64_t now_us = 0;
  for (auto _ : state) {
    auto popped = q.pop();
    now_us = popped.at.as_micros();
    popped.action();
    push_one(now_us);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_SchedulerHoldCalendar(benchmark::State& state) {
  scheduler_hold(state, sim::SchedulerKind::kCalendar);
}
BENCHMARK(BM_SchedulerHoldCalendar)->Arg(1024)->Arg(16384)->Arg(65536);
void BM_SchedulerHoldHeap(benchmark::State& state) {
  scheduler_hold(state, sim::SchedulerKind::kHeap);
}
BENCHMARK(BM_SchedulerHoldHeap)->Arg(1024)->Arg(16384)->Arg(65536);

// Arena pools (common/arena.h): pooled shared payload allocation vs
// make_shared, and recycled vector buffers vs fresh ones.
struct PooledBlob {
  std::array<std::byte, 256> bytes;
};

void BM_MakeSharedPayload(benchmark::State& state) {
  for (auto _ : state) {
    auto p = std::make_shared<PooledBlob>();
    benchmark::DoNotOptimize(p.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MakeSharedPayload);

void BM_MakePooledPayload(benchmark::State& state) {
  for (auto _ : state) {
    auto p = make_pooled<PooledBlob>();
    benchmark::DoNotOptimize(p.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MakePooledPayload);

void BM_VectorPoolRoundTrip(benchmark::State& state) {
  VectorPool<std::uint32_t> pool;
  for (auto _ : state) {
    std::vector<std::uint32_t> v = pool.acquire();
    for (std::uint32_t i = 0; i < 64; ++i) v.push_back(i);
    benchmark::DoNotOptimize(v.data());
    pool.release(std::move(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VectorPoolRoundTrip);

void BM_TraceMacroDetached(benchmark::State& state) {
  // The common case in production runs: no tracer attached. The macro must
  // reduce to a null-pointer test; payload expressions are never evaluated.
  obs::Tracer* tracer = nullptr;
  std::uint64_t i = 0;
  for (auto _ : state) {
    PDS_TRACE_INSTANT(tracer, SimTime::micros(static_cast<std::int64_t>(i)),
                      NodeId(0), "bench", "tick", {"i", i});
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_TraceMacroDetached);

void BM_TraceMacroDisabled(benchmark::State& state) {
  // Attached but disabled: one pointer test plus one branch.
  obs::Tracer tracer;
  tracer.set_enabled(false);
  std::uint64_t i = 0;
  for (auto _ : state) {
    PDS_TRACE_INSTANT(&tracer, SimTime::micros(static_cast<std::int64_t>(i)),
                      NodeId(0), "bench", "tick", {"i", i});
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_TraceMacroDisabled);

void BM_TraceEmitEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  std::uint64_t i = 0;
  for (auto _ : state) {
    PDS_TRACE_INSTANT(&tracer, SimTime::micros(static_cast<std::int64_t>(i)),
                      NodeId(0), "bench", "tick", {"i", i},
                      {"half", i / 2});
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitEnabled);

// -- Tracer overhead gate ----------------------------------------------------
//
// Gates the cost of the tracer compiled in but disabled at <1% of a full PDD
// experiment. A direct wall-clock A/B of two ~1 s runs cannot resolve 1% on
// a shared machine (scheduler noise alone is several percent), so the gate
// derives the overhead instead:
//
//   overhead% = (per-call cost of the disabled macro) x (number of trace
//               sites the reference run hits) / (untraced run wall time)
//
// Per-call cost is measured over millions of iterations with a compiler
// barrier (so the enabled_ check cannot be hoisted); the site count is the
// deterministic event count of a traced run; the run time is min-of-N.
double timed_pdd_run(pds::obs::Tracer* tracer) {
  wl::PddGridParams p;
  p.nx = p.ny = 10;
  p.metadata_count = 5000;
  p.consumers = 2;
  p.seed = 1;
  p.tracer = tracer;
  const auto t0 = std::chrono::steady_clock::now();
  const wl::PddOutcome out = wl::run_pdd_grid(p);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(out.recall);
  return std::chrono::duration<double>(t1 - t0).count();
}

// Seconds per PDS_TRACE_* call against an attached-but-disabled tracer.
double disabled_macro_cost_s() {
  obs::Tracer tracer;
  tracer.set_enabled(false);
  constexpr std::uint64_t kCalls = 50'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    PDS_TRACE_INSTANT(&tracer, SimTime::micros(static_cast<std::int64_t>(i)),
                      NodeId(0), "bench", "tick", {"i", i});
    // Forces enabled_ to be re-read every iteration, as at real call sites.
    benchmark::ClobberMemory();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(kCalls);
}

int run_trace_overhead_gate() {
  // Deterministic count of trace sites the reference run hits.
  obs::Tracer counting(0);
  timed_pdd_run(&counting);
  const auto calls = static_cast<double>(counting.events().size()) +
                     static_cast<double>(counting.dropped());

  const double per_call_s = disabled_macro_cost_s();

  constexpr int kReps = 5;
  timed_pdd_run(nullptr);  // warm-up
  double best_off = 1e300;
  for (int r = 0; r < kReps; ++r) {
    best_off = std::min(best_off, timed_pdd_run(nullptr));
  }

  const double max_pct =
      bench::env_nonneg_double("PDS_TRACE_OVERHEAD_MAX_PCT", 1.0);
  const double pct = calls * per_call_s / best_off * 100.0;
  std::printf(
      "trace overhead gate: %.0f trace sites hit, %.2f ns/call disabled, "
      "untraced run %.4fs => overhead %.4f%% (max %.2f%%)\n",
      calls, per_call_s * 1e9, best_off, pct, max_pct);
  if (pct > max_pct) {
    std::printf("FAIL: disabled-tracer overhead above gate\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

// -- Flight-recorder overhead gate -------------------------------------------
//
// Same derivation as the tracer gate, for the sampler/profiler seams
// (obs/timeseries.h, obs/profiler.h). A detached sampler costs one pointer
// compare per simulator event; a detached profiler scope costs one pointer
// compare at construction and destruction. Both counts are deterministic for
// a fixed seed, so:
//
//   overhead% = (events x per-event cost + scopes x per-scope cost)
//               / (uninstrumented run wall time)

struct StatsSiteCounts {
  double events = 0.0;
  double scopes = 0.0;
};

// Deterministic per-run site counts from a fully instrumented reference run.
StatsSiteCounts stats_site_counts() {
  obs::TimeSeries sampler(SimTime::seconds(1.0));
  obs::Profiler profiler;
  wl::PddGridParams p;
  p.nx = p.ny = 10;
  p.metadata_count = 5000;
  p.consumers = 2;
  p.seed = 1;
  p.sampler = &sampler;
  p.profiler = &profiler;
  const wl::PddOutcome out = wl::run_pdd_grid(p);
  StatsSiteCounts c;
  c.events = static_cast<double>(out.events_executed);
  for (const obs::Profiler::Entry& e : profiler.snapshot()) {
    c.scopes += static_cast<double>(e.calls);
  }
  return c;
}

// Seconds per simulator event spent on the detached-sampler test.
double detached_sampler_cost_s() {
  obs::TimeSeries* sampler = nullptr;
  benchmark::DoNotOptimize(sampler);
  constexpr std::uint64_t kCalls = 100'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    if (sampler != nullptr) {
      sampler->advance_to(SimTime::micros(static_cast<std::int64_t>(i)));
    }
    // Forces the pointer to be re-read every iteration, as in the run loop.
    benchmark::ClobberMemory();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(kCalls);
}

// Seconds per instrumented scope with a detached profiler.
double detached_scope_cost_s() {
  obs::Profiler* profiler = nullptr;
  benchmark::DoNotOptimize(profiler);
  constexpr std::uint64_t kCalls = 100'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    PDS_PROF_SCOPE(profiler, "sim");
    benchmark::ClobberMemory();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(kCalls);
}

int run_stats_overhead_gate() {
  const StatsSiteCounts sites = stats_site_counts();
  const double per_event_s = detached_sampler_cost_s();
  const double per_scope_s = detached_scope_cost_s();

  constexpr int kReps = 5;
  timed_pdd_run(nullptr);  // warm-up
  double best_off = 1e300;
  for (int r = 0; r < kReps; ++r) {
    best_off = std::min(best_off, timed_pdd_run(nullptr));
  }

  const double max_pct =
      bench::env_nonneg_double("PDS_STATS_OVERHEAD_MAX_PCT", 1.0);
  const double pct = (sites.events * per_event_s + sites.scopes * per_scope_s) /
                     best_off * 100.0;
  std::printf(
      "stats overhead gate: %.0f events + %.0f scopes hit, %.2f/%.2f ns "
      "detached, uninstrumented run %.4fs => overhead %.4f%% (max %.2f%%)\n",
      sites.events, sites.scopes, per_event_s * 1e9, per_scope_s * 1e9,
      best_off, pct, max_pct);
  if (pct > max_pct) {
    std::printf("FAIL: detached flight-recorder overhead above gate\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

// Console output stays the stock ConsoleReporter; each per-iteration run is
// also captured so the results land in BENCH_micro_primitives.json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  using ConsoleReporter::ConsoleReporter;

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type == Run::RT_Iteration && !r.error_occurred) {
        captured.push_back(r);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<Run> captured;
};

int write_micro_report(const std::vector<benchmark::BenchmarkReporter::Run>&
                           runs) {
  obs::Report::Options options;
  options.experiment = "micro_primitives";
  options.title = "micro_primitives — hot-primitive microbenchmarks";
  options.paper =
      "engineering benchmark (not a paper figure): Bloom, descriptor "
      "hashing, store matching, codec, GAP, event queue, trace macros";
  options.runs = 1;
  options.jobs = 1;
  obs::Report report{std::move(options)};
  report.begin_section("benchmarks");
  for (const auto& r : runs) {
    obs::Report::Point& p = report.point();
    p.param("name", r.benchmark_name());
    p.param("time_unit", benchmark::GetTimeUnitString(r.time_unit));
    p.hidden_metric("real_time", r.GetAdjustedRealTime());
    p.hidden_metric("cpu_time", r.GetAdjustedCPUTime());
    p.hidden_metric("iterations", static_cast<double>(r.iterations));
    for (const auto& [name, counter] : r.counters) {
      p.hidden_metric("counter." + name,
                      static_cast<double>(counter.value));
    }
  }
  if (!report.write_json()) return 1;
  std::fprintf(stderr, "wrote %s\n", report.json_path().c_str());
  return 0;
}

}  // namespace
}  // namespace pds

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-overhead-gate") == 0) {
      return pds::run_trace_overhead_gate();
    }
    if (std::strcmp(argv[i], "--stats-overhead-gate") == 0) {
      return pds::run_stats_overhead_gate();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Mirror the stock reporter's color policy: escapes only on a terminal.
  pds::CapturingReporter reporter(
      isatty(fileno(stdout)) != 0
          ? benchmark::ConsoleReporter::OO_Defaults
          : benchmark::ConsoleReporter::OO_Tabular);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return pds::write_micro_report(reporter.captured);
}
