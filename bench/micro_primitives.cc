// google-benchmark microbenchmarks for the hot primitives: Bloom filter
// operations, descriptor hashing, data-store matching, wire codec, GAP
// assignment and the event queue.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/data_store.h"
#include "net/codec.h"
#include "sim/event_queue.h"
#include "util/bloom_filter.h"
#include "util/gap_assign.h"
#include "workload/generator.h"

namespace pds {
namespace {

void BM_BloomInsert(benchmark::State& state) {
  util::BloomFilter f = util::BloomFilter::with_capacity(
      static_cast<std::size_t>(state.range(0)), 0.01, 1);
  Rng rng(1);
  for (auto _ : state) {
    f.insert(rng.next_u64());
  }
}
BENCHMARK(BM_BloomInsert)->Arg(1000)->Arg(100000);

void BM_BloomQuery(benchmark::State& state) {
  util::BloomFilter f = util::BloomFilter::with_capacity(
      static_cast<std::size_t>(state.range(0)), 0.01, 1);
  Rng rng(1);
  for (std::int64_t i = 0; i < state.range(0); ++i) f.insert(rng.next_u64());
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.maybe_contains(probe++));
  }
}
BENCHMARK(BM_BloomQuery)->Arg(1000)->Arg(100000);

void BM_DescriptorEntryKey(benchmark::State& state) {
  Rng rng(2);
  const auto entries =
      wl::make_sample_descriptors(1000, wl::SampleSpace{}, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    // Fresh copy defeats the key memoization so the canonical encoding and
    // hash are measured.
    core::DataDescriptor d = entries[i++ % entries.size()];
    benchmark::DoNotOptimize(d.entry_key());
  }
}
BENCHMARK(BM_DescriptorEntryKey);

void BM_DataStoreMatchAll(benchmark::State& state) {
  core::DataStore store;
  Rng rng(3);
  for (auto& d : wl::make_sample_descriptors(
           static_cast<std::size_t>(state.range(0)), wl::SampleSpace{}, rng)) {
    store.insert_metadata(d, true, SimTime::zero(), SimTime::zero());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.match_metadata(core::Filter{}, SimTime::zero()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataStoreMatchAll)->Arg(1000)->Arg(10000);

void BM_DataStoreMatchFiltered(benchmark::State& state) {
  core::DataStore store;
  Rng rng(4);
  for (auto& d :
       wl::make_sample_descriptors(10000, wl::SampleSpace{}, rng)) {
    store.insert_metadata(d, true, SimTime::zero(), SimTime::zero());
  }
  core::Filter f;
  f.where_range("x", 10.0, 20.0).where_range("y", 10.0, 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.match_metadata(f, SimTime::zero()));
  }
}
BENCHMARK(BM_DataStoreMatchFiltered);

void BM_CodecEncodeResponse(benchmark::State& state) {
  Rng rng(5);
  net::Message m;
  m.type = net::MessageType::kResponse;
  m.kind = net::ContentKind::kMetadata;
  m.response_id = ResponseId(1);
  m.sender = NodeId(1);
  m.receivers = {NodeId(2)};
  for (auto& d : wl::make_sample_descriptors(45, wl::SampleSpace{}, rng)) {
    m.metadata.push_back(std::move(d));
  }
  const net::Codec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(m));
  }
}
BENCHMARK(BM_CodecEncodeResponse);

void BM_CodecWireSize(benchmark::State& state) {
  Rng rng(6);
  net::Message m;
  m.type = net::MessageType::kResponse;
  m.kind = net::ContentKind::kMetadata;
  m.sender = NodeId(1);
  m.receivers = {NodeId(2)};
  for (auto& d : wl::make_sample_descriptors(45, wl::SampleSpace{}, rng)) {
    m.metadata.push_back(std::move(d));
  }
  const net::Codec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.wire_size(m));
  }
}
BENCHMARK(BM_CodecWireSize);

void BM_GapHeuristic(benchmark::State& state) {
  Rng rng(7);
  // The paper's typical per-division instance: ~10 chunks, ~10 neighbors.
  util::GapInstance inst;
  inst.neighbor_count = 10;
  for (int c = 0; c < static_cast<int>(state.range(0)); ++c) {
    std::vector<std::size_t> eligible;
    for (std::size_t n = 0; n < 10; ++n) {
      if (rng.bernoulli(0.4)) eligible.push_back(n);
    }
    if (eligible.empty()) eligible.push_back(0);
    inst.hop.emplace_back(eligible.size(), 1);
    inst.eligible.push_back(std::move(eligible));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::solve_min_max_heuristic(inst));
  }
}
BENCHMARK(BM_GapHeuristic)->Arg(10)->Arg(80);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(8);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(SimTime::micros(static_cast<std::int64_t>(rng.next_u64() % 1000)),
             [] {});
    }
    while (!q.empty()) q.pop().action();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueue);

}  // namespace
}  // namespace pds

BENCHMARK_MAIN();
