// Fig. 7 (paper §VI-B.2): PDD with multiple *sequential* consumers — each
// starts after the previous finishes. Overhearing and caching make later
// consumers dramatically faster.
//
// Paper series: all consumers ~100% recall; latency 5–7 s for the first two,
// then 4.8 s, 3.2 s; the fifth takes only 0.2 s because >95% of entries were
// already cached before it even sent its query.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  bench::print_header(
      "Fig. 7 — PDD with sequential consumers (5,000 entries)",
      "recall ~100% for all; latency 5-7 s (1st/2nd), 4.8 s, 3.2 s, 0.2 s");

  const std::size_t consumers = 5;
  std::vector<util::SampleSet> recall(consumers);
  std::vector<util::SampleSet> latency(consumers);
  util::SampleSet overhead;
  const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
    wl::PddGridParams p;
    p.metadata_count = 5000;
    p.consumers = consumers;
    p.sequential = true;
    p.seed = static_cast<std::uint64_t>(r + 1);
    return wl::run_pdd_grid(p);
  });
  for (const wl::PddOutcome& out : outs) {
    for (std::size_t i = 0;
         i < consumers && i < out.per_consumer_recall.size(); ++i) {
      recall[i].add(out.per_consumer_recall[i]);
      latency[i].add(out.per_consumer_latency_s[i]);
    }
    overhead.add(out.overhead_mb);
  }

  util::Table table({"consumer", "recall", "latency (s)"});
  for (std::size_t i = 0; i < consumers; ++i) {
    table.add_row({std::to_string(i + 1),
                   util::Table::num(recall[i].mean(), 3),
                   util::Table::num(latency[i].mean(), 2)});
  }
  table.print();
  std::printf("\ntotal overhead: %.2f MB\n", overhead.mean());
  return 0;
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
