// Fig. 7 (paper §VI-B.2): PDD with multiple *sequential* consumers — each
// starts after the previous finishes. Overhearing and caching make later
// consumers dramatically faster.
//
// Paper series: all consumers ~100% recall; latency 5–7 s for the first two,
// then 4.8 s, 3.2 s; the fifth takes only 0.2 s because >95% of entries were
// already cached before it even sent its query.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  obs::Report report = bench::make_report(
      "pdd_rounds", "Fig. 7 — PDD with sequential consumers (5,000 entries)",
      "recall ~100% for all; latency 5-7 s (1st/2nd), 4.8 s, 3.2 s, 0.2 s");
  report.set_param("seed", 1);
  report.set_param("entries", 5000);

  const std::size_t consumers = 5;
  std::vector<util::SampleSet> recall(consumers);
  std::vector<util::SampleSet> latency(consumers);
  util::SampleSet overhead;
  // Causal capture rides the first (deterministic, seed 1) run only; tracing
  // never perturbs outcomes, so that run's metrics still average in as-is.
  bench::CausalCapture capture;
  const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
    wl::PddGridParams p;
    p.tracer = r == 0 ? capture.tracer() : nullptr;
    p.metadata_count = 5000;
    p.consumers = consumers;
    p.sequential = true;
    p.seed = static_cast<std::uint64_t>(r + 1);
    return wl::run_pdd_grid(p);
  });
  for (const wl::PddOutcome& out : outs) {
    for (std::size_t i = 0;
         i < consumers && i < out.per_consumer_recall.size(); ++i) {
      recall[i].add(out.per_consumer_recall[i]);
      latency[i].add(out.per_consumer_latency_s[i]);
    }
    overhead.add(out.overhead_mb);
  }

  report.begin_table("consumers", {"consumer", "recall", "latency (s)"});
  for (std::size_t i = 0; i < consumers; ++i) {
    report.point()
        .param("consumer", static_cast<std::int64_t>(i + 1))
        .metric("recall", recall[i], 3)
        .metric("latency_s", latency[i], 2);
  }
  report.print_table();
  std::printf("\ntotal overhead: %.2f MB\n", overhead.mean());

  report.begin_section("summary");
  report.point().hidden_metric("overhead_mb", overhead);

  // Per-round timelines for the first (deterministic, seed 1) run — the
  // per-consumer recall curves behind the figure's aggregate numbers. The
  // JSON keeps the historical per-round field names (round, start_s, end_s,
  // new, total, responses).
  const wl::PddOutcome& first = outs.front();
  std::printf("\nper-round progress (seed 1):\n");
  report.begin_table("rounds",
                     {"consumer", "round", "end (s)", "new", "total",
                      "recall"});
  for (std::size_t i = 0; i < first.per_consumer_rounds.size(); ++i) {
    for (const wl::PddRoundRecord& rec : first.per_consumer_rounds[i]) {
      report.point()
          .param("consumer", static_cast<std::int64_t>(i + 1))
          .param("round", static_cast<std::int64_t>(rec.round))
          .metric("end_s", rec.end_s, 2)
          .metric("new", static_cast<std::int64_t>(rec.new_keys))
          .metric("total", static_cast<std::int64_t>(rec.cumulative))
          .metric("recall", static_cast<double>(rec.cumulative) / 5000.0, 3)
          .hidden_metric("start_s", rec.start_s)
          .hidden_metric("responses", static_cast<double>(rec.responses));
    }
  }
  report.print_table();

  // Causal span-DAG health + critical-path shape for the traced run
  // (DESIGN.md §14); the orphans/dropped columns are gated to zero.
  const tools::CausalReport causal = capture.analyze();
  std::printf("\ncausal critical paths (seed 1):\n");
  report.begin_table("causal",
                     {"dominant edge", "traces", "with path", "orphans",
                      "dropped", "cp hops p50", "cp hops p99",
                      "cp len p50 (ms)", "cp len p99 (ms)"});
  {
    obs::Report::Point& point = report.point();
    bench::add_causal_point(point, causal);
  }
  report.print_table();

  // Historically this binary announced its JSON on stdout; keep that.
  if (!report.write_json()) return 1;
  std::printf("\nwrote %s\n", report.json_path().c_str());
  return 0;
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
