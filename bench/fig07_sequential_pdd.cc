// Fig. 7 (paper §VI-B.2): PDD with multiple *sequential* consumers — each
// starts after the previous finishes. Overhearing and caching make later
// consumers dramatically faster.
//
// Paper series: all consumers ~100% recall; latency 5–7 s for the first two,
// then 4.8 s, 3.2 s; the fifth takes only 0.2 s because >95% of entries were
// already cached before it even sent its query.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  bench::print_header(
      "Fig. 7 — PDD with sequential consumers (5,000 entries)",
      "recall ~100% for all; latency 5-7 s (1st/2nd), 4.8 s, 3.2 s, 0.2 s");

  const std::size_t consumers = 5;
  std::vector<util::SampleSet> recall(consumers);
  std::vector<util::SampleSet> latency(consumers);
  util::SampleSet overhead;
  const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
    wl::PddGridParams p;
    p.metadata_count = 5000;
    p.consumers = consumers;
    p.sequential = true;
    p.seed = static_cast<std::uint64_t>(r + 1);
    return wl::run_pdd_grid(p);
  });
  for (const wl::PddOutcome& out : outs) {
    for (std::size_t i = 0;
         i < consumers && i < out.per_consumer_recall.size(); ++i) {
      recall[i].add(out.per_consumer_recall[i]);
      latency[i].add(out.per_consumer_latency_s[i]);
    }
    overhead.add(out.overhead_mb);
  }

  util::Table table({"consumer", "recall", "latency (s)"});
  for (std::size_t i = 0; i < consumers; ++i) {
    table.add_row({std::to_string(i + 1),
                   util::Table::num(recall[i].mean(), 3),
                   util::Table::num(latency[i].mean(), 2)});
  }
  table.print();
  std::printf("\ntotal overhead: %.2f MB\n", overhead.mean());

  // Per-round timelines for the first (deterministic, seed 1) run — the
  // per-consumer recall curves behind the figure's aggregate numbers.
  const wl::PddOutcome& first = outs.front();
  std::printf("\nper-round progress (seed 1):\n");
  util::Table rounds_table(
      {"consumer", "round", "end (s)", "new", "total", "recall"});
  for (std::size_t i = 0; i < first.per_consumer_rounds.size(); ++i) {
    for (const wl::PddRoundRecord& rec : first.per_consumer_rounds[i]) {
      rounds_table.add_row(
          {std::to_string(i + 1), std::to_string(rec.round),
           util::Table::num(rec.end_s, 2), std::to_string(rec.new_keys),
           std::to_string(rec.cumulative),
           util::Table::num(static_cast<double>(rec.cumulative) / 5000.0,
                            3)});
    }
  }
  rounds_table.print();

  std::FILE* json = std::fopen("BENCH_pdd_rounds.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"benchmark\": \"pdd_rounds\",\n");
    std::fprintf(json, "  \"seed\": 1,\n  \"entries\": 5000,\n");
    std::fprintf(json, "  \"consumers\": [\n");
    for (std::size_t i = 0; i < first.per_consumer_rounds.size(); ++i) {
      std::fprintf(json, "    {\"consumer\": %zu, \"rounds\": [", i + 1);
      const auto& rounds = first.per_consumer_rounds[i];
      for (std::size_t r = 0; r < rounds.size(); ++r) {
        std::fprintf(json,
                     "%s\n      {\"round\": %d, \"start_s\": %.6f, "
                     "\"end_s\": %.6f, \"new\": %zu, \"total\": %zu, "
                     "\"responses\": %zu}",
                     r == 0 ? "" : ",", rounds[r].round, rounds[r].start_s,
                     rounds[r].end_s, rounds[r].new_keys,
                     rounds[r].cumulative, rounds[r].responses);
      }
      std::fprintf(json, "\n    ]}%s\n",
                   i + 1 < first.per_consumer_rounds.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_pdd_rounds.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
