// Fig. 8 (paper §VI-B.2): PDD with 1–5 *simultaneous* consumers placed
// randomly in the center 5×5 subgrid. Mixedcast lets one transmission serve
// several lingering queries at once.
//
// Paper series: recall 100% for every consumer count; latency grows
// sub-linearly with consumers and then stabilizes.
//
// The 5-consumer point's first seed is flight-recorded (DESIGN.md §15):
// the capture is written to STATS_fig08.ndjson and the same seed is then
// re-run *serially* — the sim-kind series projection must be byte-identical
// whether the run executed on a PDS_BENCH_JOBS worker thread or inline,
// which is the worker-pool half of the `timeseries-deterministic` gate
// (tab_scale covers the shard-thread half).
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

constexpr std::size_t kRecordedConsumers = 5;

wl::PddGridParams point_params(std::size_t consumers, int seed_index) {
  wl::PddGridParams p;
  p.metadata_count = 5000;
  p.consumers = consumers;
  p.sequential = false;
  p.seed = static_cast<std::uint64_t>(seed_index + 1);
  return p;
}

int run() {
  obs::Report report = bench::make_report(
      "fig08_simultaneous_pdd",
      "Fig. 8 — PDD with simultaneous consumers (5,000 entries)",
      "recall 100%; latency grows sub-linearly, then stabilizes");
  report.set_param("entries", 5000);

  bench::StatsCapture capture;
  report.begin_table("main", {"consumers", "recall", "mean latency (s)",
                              "overhead (MB)"});
  for (const std::size_t consumers : {1u, 2u, 3u, 4u, 5u}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      wl::PddGridParams p = point_params(consumers, r);
      if (consumers == kRecordedConsumers && r == 0) {
        p.sampler = capture.sampler();
        p.profiler = capture.profiler();
      }
      return wl::run_pdd_grid(p);
    });
    for (const wl::PddOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("consumers", static_cast<std::int64_t>(consumers))
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 2)
        .metric("overhead_mb", overhead, 2);
  }
  report.print_table();

  // Worker-pool determinism A/B: re-capture the recorded seed on the
  // calling thread and byte-compare the deterministic projections.
  bench::StatsCapture serial;
  {
    wl::PddGridParams p = point_params(kRecordedConsumers, 0);
    p.sampler = serial.sampler();
    p.profiler = serial.profiler();
    (void)wl::run_pdd_grid(p);
  }
  const bool identical = capture.ndjson(/*include_wall=*/false) ==
                         serial.ndjson(/*include_wall=*/false);

  report.begin_section("stats");
  const tools::ParsedSeries parsed = capture.analyze();
  obs::Report::Point& stats_point =
      report.point()
          .param("consumers",
                 static_cast<std::int64_t>(kRecordedConsumers))
          .param("identical", identical, identical ? "yes" : "NO");
  // Default grid is 10x10 = 100 nodes — the concurrent-transmission ceiling.
  bench::add_stats_point(stats_point, parsed, 100.0);
  std::printf("\nflight recorder: %zu rows, pooled vs serial series %s\n",
              parsed.rows.size(), identical ? "identical" : "DIVERGED");

  int rc = bench::finish(report);
  if (!capture.write("STATS_fig08.ndjson")) {
    std::fprintf(stderr, "FAIL: cannot write STATS_fig08.ndjson\n");
    rc = 1;
  } else {
    std::fprintf(stderr, "wrote STATS_fig08.ndjson\n");
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: flight-recorder series depends on the "
                         "worker pool\n");
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
