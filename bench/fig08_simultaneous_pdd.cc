// Fig. 8 (paper §VI-B.2): PDD with 1–5 *simultaneous* consumers placed
// randomly in the center 5×5 subgrid. Mixedcast lets one transmission serve
// several lingering queries at once.
//
// Paper series: recall 100% for every consumer count; latency grows
// sub-linearly with consumers and then stabilizes.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  obs::Report report = bench::make_report(
      "fig08_simultaneous_pdd",
      "Fig. 8 — PDD with simultaneous consumers (5,000 entries)",
      "recall 100%; latency grows sub-linearly, then stabilizes");
  report.set_param("entries", 5000);

  report.begin_table("main", {"consumers", "recall", "mean latency (s)",
                              "overhead (MB)"});
  for (const std::size_t consumers : {1u, 2u, 3u, 4u, 5u}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      wl::PddGridParams p;
      p.metadata_count = 5000;
      p.consumers = consumers;
      p.sequential = false;
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_pdd_grid(p);
    });
    for (const wl::PddOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("consumers", static_cast<std::int64_t>(consumers))
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 2)
        .metric("overhead_mb", overhead, 2);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
