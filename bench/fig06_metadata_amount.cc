// Fig. 6 (paper §VI-B.2): multi-round PDD under growing metadata amounts,
// from the normal load of 5,000 entries to the 20,000-entry stress test.
//
// Paper series: recall stays at 100%; latency grows sub-linearly from 5.6 s
// to 11.2 s; message overhead grows almost linearly from 5.13 MB to
// 22.21 MB.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  obs::Report report = bench::make_report(
      "fig06_metadata_amount",
      "Fig. 6 — multi-round PDD vs metadata amount (10×10 grid)",
      "recall 100%; latency 5.6 -> 11.2 s sublinear; overhead 5.13 -> "
      "22.21 MB ~linear");

  report.begin_table("main", {"entries", "recall", "latency (s)",
                              "overhead (MB)", "rounds"});
  for (const std::size_t entries : {5000u, 10000u, 15000u, 20000u}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    util::SampleSet rounds;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      wl::PddGridParams p;
      p.metadata_count = entries;
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_pdd_grid(p);
    });
    for (const wl::PddOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
      rounds.add(out.rounds);
    }
    report.point()
        .param("entries", static_cast<std::int64_t>(entries))
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 2)
        .metric("overhead_mb", overhead, 2)
        .metric("rounds", rounds, 1);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
