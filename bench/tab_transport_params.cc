// §V.2/§V.4 parameter explorations the paper describes but omits figures
// for: reception vs LeakingRate and BucketCapacity (two senders, one
// receiver), and reception vs RetrTimeout / MaxRetrTime.
//
// Paper text: as LeakingRate grows 1–5 Mb/s, reception stays high (>97%)
// then drops once the rate exceeds what the radio can broadcast; a large
// BucketCapacity lowers reception by overestimating the free OS buffer;
// reception improves then plateaus beyond RetrTimeout 0.2 s / MaxRetrTime 4
// — the prototype's chosen operating point is 300 KB / 4.5 Mb/s / 0.2 s / 4.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

wl::SingleHopOutcome averaged(const wl::SingleHopParams& base) {
  util::SampleSet reception;
  util::SampleSet rate;
  for (int r = 0; r < bench::runs(); ++r) {
    wl::SingleHopParams p = base;
    p.seed = static_cast<std::uint64_t>(r + 1);
    const wl::SingleHopOutcome out = wl::run_single_hop(p);
    reception.add(out.reception);
    rate.add(out.data_rate_mbps);
  }
  return {.reception = reception.mean(), .data_rate_mbps = rate.mean()};
}

int run() {
  bench::print_header(
      "§V parameter tables — leaky bucket and ack/retransmission",
      "reception high until LeakingRate exceeds the radio; too-large "
      "BucketCapacity overflows the OS buffer; gains plateau beyond "
      "RetrTimeout 0.2 s / MaxRetrTime 4");

  std::printf("LeakingRate sweep (2 senders, 300 KB bucket, no ack):\n");
  util::Table rate_table({"leak rate (Mb/s)", "reception",
                          "data rate (Mb/s)"});
  for (const double mbps : {1.0, 2.0, 3.0, 4.0, 4.5, 5.0, 6.0}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucket;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.leak_rate_bps = mbps * 1e6;
    const auto out = averaged(p);
    rate_table.add_row({util::Table::num(mbps, 1),
                        util::Table::num(out.reception, 3),
                        util::Table::num(out.data_rate_mbps, 2)});
  }
  rate_table.print();

  std::printf("\nBucketCapacity sweep (2 senders, 4.5 Mb/s leak, no ack):\n");
  util::Table cap_table({"capacity (KB)", "reception"});
  for (const std::size_t kb : {100u, 300u, 600u, 1200u, 2400u}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucket;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.bucket_capacity_bytes = kb * 1000;
    const auto out = averaged(p);
    cap_table.add_row(
        {std::to_string(kb), util::Table::num(out.reception, 3)});
  }
  cap_table.print();

  std::printf("\nRetrTimeout sweep (2 senders, ack/retx, MaxRetrTime 4):\n");
  util::Table to_table({"RetrTimeout (s)", "reception"});
  for (const double timeout_s : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucketAck;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.retr_timeout = SimTime::seconds(timeout_s);
    const auto out = averaged(p);
    to_table.add_row({util::Table::num(timeout_s, 2),
                      util::Table::num(out.reception, 3)});
  }
  to_table.print();

  std::printf("\nMaxRetrTime sweep (2 senders, ack/retx, 0.2 s timeout):\n");
  util::Table mr_table({"MaxRetrTime", "reception"});
  for (const int retries : {0, 1, 2, 4, 8}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucketAck;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.max_retransmissions = retries;
    const auto out = averaged(p);
    mr_table.add_row(
        {std::to_string(retries), util::Table::num(out.reception, 3)});
  }
  mr_table.print();
  return 0;
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
