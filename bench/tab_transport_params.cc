// §V.2/§V.4 parameter explorations the paper describes but omits figures
// for: reception vs LeakingRate and BucketCapacity (two senders, one
// receiver), and reception vs RetrTimeout / MaxRetrTime.
//
// Paper text: as LeakingRate grows 1–5 Mb/s, reception stays high (>97%)
// then drops once the rate exceeds what the radio can broadcast; a large
// BucketCapacity lowers reception by overestimating the free OS buffer;
// reception improves then plateaus beyond RetrTimeout 0.2 s / MaxRetrTime 4
// — the prototype's chosen operating point is 300 KB / 4.5 Mb/s / 0.2 s / 4.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

// Per-seed sample sets, not just the means: the Report records the spread.
struct Averaged {
  util::SampleSet reception;
  util::SampleSet data_rate_mbps;
};

Averaged averaged(const wl::SingleHopParams& base) {
  Averaged out;
  for (int r = 0; r < bench::runs(); ++r) {
    wl::SingleHopParams p = base;
    p.seed = static_cast<std::uint64_t>(r + 1);
    const wl::SingleHopOutcome o = wl::run_single_hop(p);
    out.reception.add(o.reception);
    out.data_rate_mbps.add(o.data_rate_mbps);
  }
  return out;
}

int run() {
  obs::Report report = bench::make_report(
      "tab_transport_params",
      "§V parameter tables — leaky bucket and ack/retransmission",
      "reception high until LeakingRate exceeds the radio; too-large "
      "BucketCapacity overflows the OS buffer; gains plateau beyond "
      "RetrTimeout 0.2 s / MaxRetrTime 4");
  report.set_param("senders", 2);

  std::printf("LeakingRate sweep (2 senders, 300 KB bucket, no ack):\n");
  report.begin_table("leaking_rate", {"leak rate (Mb/s)", "reception",
                                      "data rate (Mb/s)"});
  for (const double mbps : {1.0, 2.0, 3.0, 4.0, 4.5, 5.0, 6.0}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucket;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.leak_rate_bps = mbps * 1e6;
    const Averaged out = averaged(p);
    report.point()
        .param("leak_rate_mbps", mbps, 1)
        .metric("reception", out.reception, 3)
        .metric("data_rate_mbps", out.data_rate_mbps, 2);
  }
  report.print_table();

  std::printf("\nBucketCapacity sweep (2 senders, 4.5 Mb/s leak, no ack):\n");
  report.begin_table("bucket_capacity", {"capacity (KB)", "reception"});
  for (const std::size_t kb : {100u, 300u, 600u, 1200u, 2400u}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucket;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.bucket_capacity_bytes = kb * 1000;
    const Averaged out = averaged(p);
    report.point()
        .param("capacity_kb", static_cast<std::int64_t>(kb))
        .metric("reception", out.reception, 3);
  }
  report.print_table();

  std::printf("\nRetrTimeout sweep (2 senders, ack/retx, MaxRetrTime 4):\n");
  report.begin_table("retr_timeout", {"RetrTimeout (s)", "reception"});
  for (const double timeout_s : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucketAck;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.retr_timeout = SimTime::seconds(timeout_s);
    const Averaged out = averaged(p);
    report.point()
        .param("retr_timeout_s", timeout_s, 2)
        .metric("reception", out.reception, 3);
  }
  report.print_table();

  std::printf("\nMaxRetrTime sweep (2 senders, ack/retx, 0.2 s timeout):\n");
  report.begin_table("max_retr_time", {"MaxRetrTime", "reception"});
  for (const int retries : {0, 1, 2, 4, 8}) {
    wl::SingleHopParams p;
    p.mode = wl::TransportMode::kLeakyBucketAck;
    p.senders = 2;
    p.messages_per_sender = 5000;
    p.max_retransmissions = retries;
    const Averaged out = averaged(p);
    report.point()
        .param("max_retr_time", static_cast<std::int64_t>(retries))
        .metric("reception", out.reception, 3);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
