// City-scale simulation core benchmark: node sweep over 1k/5k/20k/50k grids
// driving the full PDD + PDR stacks, plus a scheduler hold-model microbench
// (calendar queue vs the binary-heap oracle) at matching pending-event
// counts. Results land in BENCH_scale.json so the scale envelope is tracked
// across PRs and gated by pdsreport.
//
// Sections:
//   scheduler  hold model (pop earliest, push replacement at a random
//              near-future offset) at pending counts matching the node
//              sweep; events/sec per SchedulerKind and the calendar/heap
//              speedup. This isolates scheduler throughput from protocol
//              work — the number a scenario's event loop is bounded by.
//   scenarios  full PDD discovery + PDR retrieval per grid size: recall,
//              wall seconds, simulator events/sec, peak RSS.
//   oracle     smallest grid run twice (kCalendar vs kHeap): every outcome
//              bit must match — the calendar queue is only an optimisation.
//   shards     smallest grid PDD across shard_threads 1/2/8 with the
//              candidate threshold forced to 0 so the worker pool engages:
//              outcomes must be bit-identical regardless of thread count.
//   stats      flight-recorder summary (DESIGN.md §15): the largest grid's
//              PDR run is sampled at 1 Hz sim time (full capture written to
//              STATS_scale.ndjson for `pdscli stats`), and the shard runs
//              above each re-capture the same series — the sim-kind
//              projection must be byte-identical across thread counts.
//
// Exit status: nonzero when the oracle, shard outcomes or shard series
// diverge, or when the env floors below are set and missed (CI sets them;
// default 0 = report only, so laptops and debug builds stay green).
//
// Flags / env (invalid values are fatal, never silently defaulted):
//   --smoke                     1k + 5k grids only, shorter hold model (CI)
//   --tiny                      a few hundred nodes, minimal ops (TSan CI)
//   PDS_SIM_SHARDS              shard_threads for the scenario sweep
//   PDS_SCALE_MIN_EVENTS_PER_S  floor on every scenario's PDD events/sec
//   PDS_SCALE_MIN_SCHED_SPEEDUP floor on the calendar/heap speedup at the
//                               largest pending count
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "sim/event_queue.h"
#include "workload/experiment.h"

namespace pds {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// -- Scheduler hold model -----------------------------------------------------

// Hold workload with timer churn, shaped like the transport's steady
// state: keep `pending` frame events in flight; each iteration pops the
// earliest, schedules a replacement at a random offset in (0, 250 ms]
// (the order of pacing gaps and timeouts), arms a 200 ms retransmission
// timer, and cancels the oldest armed timer — the way an ack cancels the
// timer of a delivered frame. Nearly every timer dies before firing, so a
// lazy-deletion scheduler carries the corpses until their timestamps
// surface; O(1) cancellation does not. Actions carry an 80-byte payload
// like real protocol continuations, so InlineFunction's inline path (not
// a trivial empty lambda) is what gets measured.
double run_hold_once(sim::SchedulerKind kind, std::size_t pending,
                     std::uint64_t ops) {
  sim::EventQueue q(kind);
  Rng rng(0x5ca1ab1eull + pending);
  std::uint64_t acc = 0;
  std::array<std::uint64_t, 10> payload{};
  SimTime now = SimTime::zero();
  const auto offset = [&rng] {
    return SimTime::micros(1 + rng.uniform_int(0, 249'999));
  };
  for (std::size_t i = 0; i < pending; ++i) {
    payload[0] = i;
    q.push(now + offset(), [payload, &acc] { acc += payload[0]; });
  }
  // Circular book of armed retransmission timers; overwriting cancels.
  std::vector<sim::EventQueue::EventId> timers(std::max<std::size_t>(
      pending / 4, 16));
  std::size_t timer_head = 0;
  std::size_t timers_armed = 0;
  const double start = now_s();
  for (std::uint64_t op = 0; op < ops; ++op) {
    auto popped = q.pop();
    popped.action();
    now = popped.at;
    payload[0] = op;
    q.push(now + offset(), [payload, &acc] { acc += payload[0]; });
    if (timers_armed == timers.size()) q.cancel(timers[timer_head]);
    payload[0] = ~op;
    timers[timer_head] =
        q.push(now + SimTime::millis(200), [payload, &acc] {
          acc += payload[0];
        });
    timer_head = (timer_head + 1) % timers.size();
    timers_armed = std::min(timers_armed + 1, timers.size());
  }
  const double wall = now_s() - start;
  while (!q.empty()) q.pop().action();
  // Keep the accumulator observable so the work cannot be optimised away.
  if (acc == 0xdeadbeef) std::fprintf(stderr, "unreachable\n");
  return static_cast<double>(ops) / wall;
}

// Best of five interleaved runs per kind: the bench host is a shared
// single-vCPU VM where a single-shot timing swings by ±30%, so the fastest
// repetition is the closest observable to the implementation's actual cost —
// and alternating kinds rep-by-rep makes any quiet (or noisy) phase of the
// host cover both, keeping the reported ratio honest.
struct HoldResult {
  double calendar = 0.0;
  double heap = 0.0;
};

HoldResult run_hold(std::size_t pending, std::uint64_t ops) {
  HoldResult r;
  for (int rep = 0; rep < 5; ++rep) {
    r.calendar = std::max(
        r.calendar, run_hold_once(sim::SchedulerKind::kCalendar, pending, ops));
    r.heap =
        std::max(r.heap, run_hold_once(sim::SchedulerKind::kHeap, pending, ops));
  }
  return r;
}

// -- Scenario sweep -----------------------------------------------------------

struct ScenarioResult {
  std::size_t nodes = 0;
  wl::PddOutcome pdd;
  double pdd_wall_s = 0.0;
  wl::RetrievalOutcome pdr;
  double pdr_wall_s = 0.0;
};

wl::PddGridParams pdd_params(std::size_t side, int shard_threads) {
  wl::PddGridParams p;
  p.nx = side;
  p.ny = side;
  // A fixed catalogue regardless of grid size: the sweep scales the *radio
  // population*, not the workload, so events/sec differences are the sim
  // core's. Redundancy 2 keeps copies within discovery reach on big grids.
  p.metadata_count = 500;
  p.redundancy = 2;
  p.consumers = 1;
  p.radio.shard_threads = shard_threads;
  p.seed = 1;
  return p;
}

wl::RetrievalGridParams pdr_params(std::size_t side, int shard_threads) {
  wl::RetrievalGridParams p;
  p.nx = side;
  p.ny = side;
  p.item_size_bytes = 2u * 1024 * 1024;
  // Copy density scales with area so the nearest holder of any chunk stays
  // a bounded number of hops away — the pervasive-caching regime the paper
  // assumes; without it, city-scale retrieval is bounded by raw distance,
  // not by the sim core this bench measures.
  p.redundancy = std::max<int>(2, static_cast<int>((side * side) / 64));
  p.consumers = 1;
  p.radio.shard_threads = shard_threads;
  p.seed = 1;
  return p;
}

// `stats`, when non-null, flight-records the PDR run (the memory-heavy leg:
// cached chunk bytes, reassembly buffers) and profiles both legs. Sampling
// reads state only, so outcomes are identical with or without it.
ScenarioResult run_scenario(std::size_t side, int shard_threads,
                            bench::StatsCapture* stats) {
  ScenarioResult r;
  r.nodes = side * side;
  wl::PddGridParams pp = pdd_params(side, shard_threads);
  wl::RetrievalGridParams rp = pdr_params(side, shard_threads);
  if (stats != nullptr) {
    stats->reset();
    pp.profiler = stats->profiler();
    rp.sampler = stats->sampler();
    rp.profiler = stats->profiler();
  }
  double t0 = now_s();
  r.pdd = wl::run_pdd_grid(pp);
  r.pdd_wall_s = now_s() - t0;
  t0 = now_s();
  r.pdr = wl::run_retrieval_grid(rp);
  r.pdr_wall_s = now_s() - t0;
  return r;
}

bool pdd_outcomes_identical(const wl::PddOutcome& a, const wl::PddOutcome& b) {
  return a.recall == b.recall && a.latency_s == b.latency_s &&
         a.overhead_mb == b.overhead_mb && a.rounds == b.rounds &&
         a.all_finished == b.all_finished &&
         a.events_executed == b.events_executed;
}

int run(bool smoke, bool tiny) {
  std::printf("== tab_scale — city-scale sim core sweep ==\n");
  std::printf("mode: %s\n\n", tiny ? "tiny" : smoke ? "smoke" : "full");

  // Grid sides: 32^2=1024, 71^2=5041, 141^2=19881, 224^2=50176.
  const std::vector<std::size_t> sides =
      tiny    ? std::vector<std::size_t>{8}
      : smoke ? std::vector<std::size_t>{32, 71}
              : std::vector<std::size_t>{32, 71, 141, 224};
  const std::uint64_t hold_ops = tiny ? 20'000 : smoke ? 400'000 : 1'000'000;
  const int shard_threads = bench::env_positive_int("PDS_SIM_SHARDS", 1);

  obs::Report::Options options;
  options.experiment = "scale";
  options.title = "tab_scale — city-scale sim core sweep";
  options.paper =
      "engineering benchmark (not a paper figure): calendar scheduler, SoA "
      "radio and sharded execution must hold the scale envelope";
  options.runs = 1;
  options.jobs = 1;
  obs::Report report{std::move(options)};
  report.set_param("mode", tiny ? "tiny" : smoke ? "smoke" : "full");
  report.set_param("shard_threads", static_cast<std::int64_t>(shard_threads));

  // Scheduler hold model at pending counts matching the node sweep.
  report.begin_table("scheduler", {"pending", "calendar ev/s", "heap ev/s",
                                   "speedup"});
  double largest_speedup = 0.0;
  for (const std::size_t side : sides) {
    const std::size_t pending = side * side;
    const HoldResult hold = run_hold(pending, hold_ops);
    const double cal = hold.calendar;
    const double heap = hold.heap;
    const double speedup = heap > 0.0 ? cal / heap : 0.0;
    largest_speedup = speedup;
    report.point()
        .param("pending", static_cast<std::int64_t>(pending))
        .metric("calendar.events_per_s", cal, 0)
        .metric("heap.events_per_s", heap, 0)
        .metric("speedup", speedup, 2);
  }
  report.print_table();

  // Full-stack scenario sweep.
  report.begin_table("scenarios",
                     {"nodes", "pdd recall", "pdd wall (s)", "pdd ev/s",
                      "pdr recall", "pdr wall (s)", "pdr ev/s", "rss (MB)"});
  std::vector<ScenarioResult> results;
  bench::StatsCapture capture;
  for (const std::size_t side : sides) {
    // Flight-record the largest grid — the run the RSS budget gate judges.
    const ScenarioResult r = run_scenario(
        side, shard_threads, side == sides.back() ? &capture : nullptr);
    const double pdd_eps = r.pdd_wall_s > 0.0
                               ? static_cast<double>(r.pdd.events_executed) /
                                     r.pdd_wall_s
                               : 0.0;
    const double pdr_eps = r.pdr_wall_s > 0.0
                               ? static_cast<double>(r.pdr.events_executed) /
                                     r.pdr_wall_s
                               : 0.0;
    report.point()
        .param("nodes", static_cast<std::int64_t>(r.nodes))
        .metric("pdd.recall", r.pdd.recall, 3)
        .metric("pdd.wall_s", r.pdd_wall_s, 2)
        .metric("pdd.events_per_s", pdd_eps, 0)
        .metric("pdr.recall", r.pdr.recall, 3)
        .metric("pdr.wall_s", r.pdr_wall_s, 2)
        .metric("pdr.events_per_s", pdr_eps, 0)
        .metric("peak_rss_mb", obs::peak_rss_mb(), 1)
        .hidden_metric("pdd.events",
                       static_cast<double>(r.pdd.events_executed))
        .hidden_metric("pdr.events",
                       static_cast<double>(r.pdr.events_executed))
        .hidden_metric("pdd.latency_s", r.pdd.latency_s)
        .hidden_metric("pdd.overhead_mb", r.pdd.overhead_mb)
        .hidden_metric("pdr.latency_s", r.pdr.latency_s)
        .hidden_metric("pdr.overhead_mb", r.pdr.overhead_mb);
    results.push_back(r);
  }
  report.print_table();

  // Oracle parity: the calendar queue against the heap on the smallest
  // grid. Every observable outcome (including the event count) must match.
  const std::size_t oracle_side = sides.front();
  wl::PddGridParams oracle = pdd_params(oracle_side, /*shard_threads=*/1);
  const wl::PddOutcome cal_out = wl::run_pdd_grid(oracle);
  oracle.scheduler = sim::SchedulerKind::kHeap;
  const wl::PddOutcome heap_out = wl::run_pdd_grid(oracle);
  const bool oracle_identical = pdd_outcomes_identical(cal_out, heap_out);
  report.begin_section("oracle");
  report.point()
      .param("nodes", static_cast<std::int64_t>(oracle_side * oracle_side))
      .param("identical", oracle_identical, oracle_identical ? "yes" : "NO")
      .hidden_metric("calendar.events",
                     static_cast<double>(cal_out.events_executed))
      .hidden_metric("heap.events",
                     static_cast<double>(heap_out.events_executed));
  std::printf("\noracle parity (%zu nodes): %s\n", oracle_side * oracle_side,
              oracle_identical ? "identical" : "DIVERGED");

  // Shard determinism: identical outcomes for 1/2/8 worker threads, with
  // the candidate threshold forced to 0 so small grids still shard. Each
  // run also re-captures the flight-recorder series: the sim-kind
  // projection must be byte-identical across thread counts too (the
  // `timeseries-deterministic` gate).
  report.begin_section("shards");
  const std::vector<int> thread_counts = tiny ? std::vector<int>{1, 2}
                                              : std::vector<int>{1, 2, 8};
  bench::StatsCapture shard_capture;
  std::string first_series;
  std::vector<wl::PddOutcome> shard_outs;
  bool shards_identical = true;
  bool series_identical = true;
  for (const int threads : thread_counts) {
    wl::PddGridParams p = pdd_params(sides.front(), threads);
    p.radio.shard_min_candidates = 0;
    shard_capture.reset();
    p.sampler = shard_capture.sampler();
    p.profiler = shard_capture.profiler();
    const double t0 = now_s();
    shard_outs.push_back(wl::run_pdd_grid(p));
    const double wall = now_s() - t0;
    const bool same = pdd_outcomes_identical(shard_outs.front(),
                                             shard_outs.back());
    shards_identical = shards_identical && same;
    const std::string series = shard_capture.ndjson(/*include_wall=*/false);
    if (first_series.empty()) first_series = series;
    const bool series_same = series == first_series;
    series_identical = series_identical && series_same;
    report.point()
        .param("threads", static_cast<std::int64_t>(threads))
        .metric("wall_s", wall, 2)
        .param("identical", same, same ? "yes" : "NO")
        .param("series_identical", series_same, series_same ? "yes" : "NO");
    std::printf("shards=%d: wall %.2f s, outcome %s, series %s\n", threads,
                wall, same ? "identical" : "DIVERGED",
                series_same ? "identical" : "DIVERGED");
  }

  // Flight-recorder summary over the largest grid's sampled PDR run; the
  // full capture goes to STATS_scale.ndjson for `pdscli stats`. Utilization
  // is average concurrent transmissions, so node count is its hard ceiling.
  report.begin_section("stats");
  const tools::ParsedSeries parsed = capture.analyze();
  obs::Report::Point& stats_point =
      report.point()
          .param("nodes",
                 static_cast<std::int64_t>(sides.back() * sides.back()))
          .param("identical", series_identical,
                 series_identical ? "yes" : "NO");
  bench::add_stats_point(stats_point, parsed,
                         static_cast<double>(sides.back() * sides.back()));
  std::printf("\nflight recorder: %zu rows over the %zu-node PDR run, "
              "series across shard threads %s\n",
              parsed.rows.size(), sides.back() * sides.back(),
              series_identical ? "identical" : "DIVERGED");

  int rc = 0;
  if (!capture.write("STATS_scale.ndjson")) {
    std::fprintf(stderr, "FAIL: cannot write STATS_scale.ndjson\n");
    rc = 1;
  } else {
    std::printf("wrote STATS_scale.ndjson\n");
  }
  if (!series_identical) {
    std::fprintf(stderr,
                 "FAIL: flight-recorder series depends on thread count\n");
    rc = 1;
  }
  if (report.write_json()) {
    std::printf("wrote %s\n", report.json_path().c_str());
  } else {
    rc = 1;
  }
  if (!oracle_identical) {
    std::fprintf(stderr, "FAIL: calendar and heap scheduler outcomes "
                         "diverge\n");
    rc = 1;
  }
  if (!shards_identical) {
    std::fprintf(stderr, "FAIL: sharded outcomes depend on thread count\n");
    rc = 1;
  }
  const double min_eps =
      bench::env_nonneg_double("PDS_SCALE_MIN_EVENTS_PER_S", 0.0);
  if (min_eps > 0.0) {
    for (const ScenarioResult& r : results) {
      const double eps = r.pdd_wall_s > 0.0
                             ? static_cast<double>(r.pdd.events_executed) /
                                   r.pdd_wall_s
                             : 0.0;
      if (eps < min_eps) {
        std::fprintf(stderr,
                     "FAIL: %zu-node PDD events/sec %.0f below required "
                     "%.0f\n",
                     r.nodes, eps, min_eps);
        rc = 1;
      }
    }
  }
  const double min_speedup =
      bench::env_nonneg_double("PDS_SCALE_MIN_SCHED_SPEEDUP", 0.0);
  if (min_speedup > 0.0 && largest_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: scheduler speedup %.2fx below required %.2fx\n",
                 largest_speedup, min_speedup);
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace pds

int main(int argc, char** argv) {
  bool smoke = false;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  return pds::run(smoke, tiny);
}
