// Fig. 12 (paper §VI-B.3): PDR retrieving a 20 MB item in the Student
// Center mobility scenario with the event rates scaled ×0.5–×2.
//
// Paper series: latency stays roughly flat at 42–48 s; overhead 24–27 MB;
// recall always 100%. (Classroom results are similar.)
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  obs::Report report = bench::make_report(
      "fig12_mobility_pdr", "Fig. 12 — PDR (20 MB) under Student Center mobility",
      "latency flat 42-48 s; overhead 24-27 MB; recall 100%");
  report.set_param("item_size_mb", 20);
  report.set_param("redundancy", 2);

  report.begin_table(
      "main", {"mobility x", "recall", "latency (s)", "overhead (MB)"});
  for (const double mult : {0.5, 1.0, 1.5, 2.0}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      wl::RetrievalMobilityParams p;
      p.mobility = sim::student_center_params();
      p.mobility.frequency_multiplier = mult;
      p.mobility.duration = SimTime::minutes(20);
      p.item_size_bytes = 20u * 1024 * 1024;
      p.redundancy = 2;  // a sole copy may walk away mid-transfer
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_retrieval_mobility(p);
    });
    for (const wl::RetrievalOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("mobility_multiplier", mult, 1)
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 1)
        .metric("overhead_mb", overhead, 1);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
