// Fig. 3 (paper §V.4): single-hop reception rate and data rate for raw UDP
// broadcast, leaky bucket only, and leaky bucket + ack/retransmission, with
// 1–4 concurrent senders blasting 1.5 KB packets at one receiver.
//
// Paper series: raw UDP ≈ 14% reception regardless of senders; leaky bucket
// raises it to 40–90% (falling as senders increase); adding
// ack/retransmission reaches 85–99%.
#include "bench_common.h"
#include "util/table.h"
#include "workload/experiment.h"

namespace pds {
namespace {

const char* mode_name(wl::TransportMode mode) {
  switch (mode) {
    case wl::TransportMode::kRawUdp:
      return "raw UDP";
    case wl::TransportMode::kLeakyBucket:
      return "leaky bucket";
    case wl::TransportMode::kLeakyBucketAck:
      return "leaky + ack";
  }
  return "?";
}

int run() {
  obs::Report report = bench::make_report(
      "fig03_singlehop",
      "Fig. 3 — single-hop reception & data rate vs concurrent senders",
      "raw UDP ~14%; leaky bucket 40-90%; leaky+ack 85-99%");

  report.begin_table("main",
                     {"mode", "senders", "reception", "data rate (Mb/s)"});
  for (const wl::TransportMode mode :
       {wl::TransportMode::kRawUdp, wl::TransportMode::kLeakyBucket,
        wl::TransportMode::kLeakyBucketAck}) {
    for (const std::size_t senders : {1u, 2u, 3u, 4u}) {
      util::SampleSet reception;
      util::SampleSet rate;
      const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
        wl::SingleHopParams p;
        p.mode = mode;
        p.senders = senders;
        p.messages_per_sender = 20000 / senders;
        p.seed = static_cast<std::uint64_t>(r + 1);
        return wl::run_single_hop(p);
      });
      for (const wl::SingleHopOutcome& out : outs) {
        reception.add(out.reception);
        rate.add(out.data_rate_mbps);
      }
      report.point()
          .param("mode", mode_name(mode))
          .param("senders", static_cast<std::int64_t>(senders))
          .metric("reception", reception, 3)
          .metric("data_rate_mbps", rate, 2);
    }
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
