// Radio-medium scaling benchmark: spatial-grid path vs brute-force O(N)
// scans on contended-profile grids of 50/100/200 nodes.
//
// Each scenario saturates the medium (every node offers a train of frames,
// with periodic mobility updates to exercise incremental grid maintenance),
// runs once with RadioConfig::use_spatial_grid = false and once with it
// true on the same seed, verifies the two MediumStats are bit-identical,
// and reports wall-clock plus simulator events/sec. A multi-seed leg runs
// the 100-node scenario across seeds through bench::run_indexed to show
// PDS_BENCH_JOBS scaling. Results land in BENCH_sim_perf.json (current
// working directory) so perf is tracked across PRs.
//
// Exit status: nonzero when grid and brute-force stats diverge, or when the
// 200-node (largest run) speedup falls below PDS_PERF_MIN_SPEEDUP (default
// 0 = report only; CI smoke sets a floor so regressions fail loudly).
//
// Flags / env:
//   --smoke              small frame counts, 50/100-node scenarios only
//   PDS_PERF_MIN_SPEEDUP minimum acceptable grid speedup on the largest run
//   PDS_BENCH_JOBS       worker threads for the multi-seed leg
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/report.h"
#include "parallel_runs.h"
#include "sim/radio.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace pds {
namespace {

struct CountingSink : sim::FrameSink {
  std::uint64_t received = 0;
  void on_frame(const sim::Frame&) override { ++received; }
};

struct RunResult {
  sim::MediumStats stats;
  std::uint64_t events = 0;
  double wall_s = 0.0;
};

// Saturated broadcast traffic on a √N×√N grid: every node offers
// `frames_per_node` 1.2 KB frames in a paced train, and one node per grid
// row drifts across its cell every 100 ms (mobility keeps the spatial index
// on the update path, not just the query path).
RunResult run_scenario(std::size_t nodes, int frames_per_node, bool use_grid,
                       std::uint64_t seed) {
  sim::Simulator simulator(seed);
  sim::RadioConfig cfg = sim::contended_radio_profile();
  cfg.use_spatial_grid = use_grid;
  sim::RadioMedium medium(simulator, cfg);

  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  const double spacing = 14.0;  // < range (15 m): 4-connected multi-hop grid
  std::vector<CountingSink> sinks(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const sim::Vec2 pos{static_cast<double>(i % side) * spacing,
                        static_cast<double>(i / side) * spacing};
    medium.add_node(NodeId(static_cast<std::uint32_t>(i)), sinks[i], pos);
  }

  // Bursty frame trains, staggered per node so offers interleave. Bursts
  // keep the driver's own event count (and hence heap depth) small relative
  // to the radio's work, so the measurement is dominated by the medium.
  const std::size_t frame_bytes = 1200;
  const int burst = 15;
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    for (int k = 0; k < frames_per_node; k += burst) {
      const int count = std::min(burst, frames_per_node - k);
      const SimTime at = SimTime::millis(75) * static_cast<double>(k / burst) +
                         SimTime::micros(static_cast<std::int64_t>(i) * 7);
      simulator.schedule_at(at, [&medium, id, frame_bytes, count] {
        for (int f = 0; f < count; ++f) {
          medium.send(id, sim::Frame{.sender = id,
                                     .size_bytes = frame_bytes,
                                     .control = false,
                                     .payload = {}});
        }
      });
    }
  }
  // One walker per row: a deterministic drift that crosses cell boundaries.
  for (std::size_t row = 0; row < side && row * side < nodes; ++row) {
    const NodeId id(static_cast<std::uint32_t>(row * side));
    const double y = static_cast<double>(row) * spacing;
    for (int step = 1; step <= 20; ++step) {
      const double x = static_cast<double>(step % 10) * spacing / 2.0;
      simulator.schedule_at(SimTime::millis(100) * static_cast<double>(step),
                            [&medium, id, x, y] {
                              medium.set_position(id, sim::Vec2{x, y});
                            });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  simulator.run(SimTime::seconds(30.0));
  const auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.stats = medium.stats();
  r.events = simulator.events_executed();
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  return r;
}

struct ScenarioReport {
  std::size_t nodes = 0;
  int frames_per_node = 0;
  RunResult brute;
  RunResult grid;
  bool stats_identical = false;
  double speedup = 0.0;
};


int run(bool smoke) {
  std::printf("== perf_radio — spatial-grid radio medium vs brute force ==\n");
  std::printf("mode: %s\n\n", smoke ? "smoke" : "full");

  const std::vector<std::size_t> node_counts =
      smoke ? std::vector<std::size_t>{50, 100}
            : std::vector<std::size_t>{50, 100, 200};
  const int frames_per_node = smoke ? 40 : 250;

  obs::Report::Options options;
  options.experiment = "sim_perf";
  options.title = "perf_radio — spatial-grid radio medium vs brute force";
  options.paper =
      "engineering benchmark (not a paper figure): grid must beat brute "
      "force with bit-identical MediumStats";
  options.runs = 1;
  options.jobs = bench::jobs();
  obs::Report report{std::move(options)};
  report.set_param("mode", smoke ? "smoke" : "full");
  report.set_param("profile", "contended");

  report.begin_table("scenarios",
                     {"nodes", "frames", "brute (s)", "grid (s)", "speedup",
                      "grid events/s", "identical stats"});
  std::vector<ScenarioReport> reports;
  for (const std::size_t nodes : node_counts) {
    ScenarioReport rep;
    rep.nodes = nodes;
    rep.frames_per_node = frames_per_node;
    rep.brute = run_scenario(nodes, frames_per_node, /*use_grid=*/false, 1);
    rep.grid = run_scenario(nodes, frames_per_node, /*use_grid=*/true, 1);
    rep.stats_identical = rep.brute.stats == rep.grid.stats;
    rep.speedup = rep.grid.wall_s > 0.0 ? rep.brute.wall_s / rep.grid.wall_s
                                        : 0.0;
    report.point()
        .param("nodes", static_cast<std::int64_t>(nodes))
        .param("frames_per_node", static_cast<std::int64_t>(frames_per_node))
        .metric("brute.wall_s", rep.brute.wall_s, 3)
        .metric("grid.wall_s", rep.grid.wall_s, 3)
        .metric("speedup", rep.speedup, 2)
        .metric("grid.events_per_s",
                static_cast<double>(rep.grid.events) / rep.grid.wall_s, 0)
        .param("stats_identical", rep.stats_identical,
               rep.stats_identical ? "yes" : "NO")
        .hidden_metric("brute.events",
                       static_cast<double>(rep.brute.events))
        .hidden_metric("brute.events_per_s",
                       static_cast<double>(rep.brute.events) /
                           rep.brute.wall_s)
        .hidden_metric("grid.events", static_cast<double>(rep.grid.events));
    reports.push_back(rep);
  }
  report.print_table();

  // Multi-seed leg: same 100-node grid scenario across seeds, fanned out by
  // bench::run_indexed; wall-clock shrinks as PDS_BENCH_JOBS grows.
  const int n_seeds = smoke ? 2 : 4;
  const auto multi_start = std::chrono::steady_clock::now();
  const auto seeds = bench::run_indexed(n_seeds, [&](int i) {
    return run_scenario(100, frames_per_node, /*use_grid=*/true,
                        static_cast<std::uint64_t>(i + 1));
  });
  const auto multi_stop = std::chrono::steady_clock::now();
  const double multi_wall =
      std::chrono::duration<double>(multi_stop - multi_start).count();
  double multi_serial = 0.0;
  for (const RunResult& r : seeds) multi_serial += r.wall_s;
  std::printf(
      "\nmulti-seed (100 nodes x %d seeds): %.3f s wall with %d jobs "
      "(%.3f s of single-thread work)\n",
      n_seeds, multi_wall, bench::jobs(), multi_serial);

  report.begin_section("multi_seed");
  report.point()
      .hidden_param("nodes", 100)
      .hidden_param("seeds", n_seeds)
      .hidden_param("jobs", bench::jobs())
      .hidden_metric("wall_s", multi_wall)
      .hidden_metric("serial_work_s", multi_serial);

  int rc = 0;
  if (report.write_json()) {
    std::printf("wrote %s\n", report.json_path().c_str());
  } else {
    rc = 1;
  }
  for (const ScenarioReport& r : reports) {
    if (!r.stats_identical) {
      std::fprintf(stderr,
                   "FAIL: %zu-node stats diverge between grid and brute "
                   "force paths\n",
                   r.nodes);
      rc = 1;
    }
  }
  const double min_speedup =
      bench::env_nonneg_double("PDS_PERF_MIN_SPEEDUP", 0.0);
  if (min_speedup > 0.0 && !reports.empty()) {
    const ScenarioReport& largest = reports.back();
    if (largest.speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: %zu-node speedup %.2fx below required %.2fx\n",
                   largest.nodes, largest.speedup, min_speedup);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace pds

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return pds::run(smoke);
}
