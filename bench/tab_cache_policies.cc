// Chunk-cache strategies (paper §VII future work: "proper data chunk
// caching strategies based on their popularity and devices' resource
// availability").
//
// Two consumers fetch the same 10 MB item one after another. Relays cache
// chunks opportunistically, bounded by the configured budget; the second
// consumer's latency and the network's total overhead show how much of the
// first transfer's caching survives under each policy.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

struct CachePoint {
  const char* name;
  std::size_t budget_bytes;
  core::ChunkEvictionPolicy policy;
};

int run() {
  obs::Report report = bench::make_report(
      "tab_cache_policies",
      "Chunk-cache policies — second-consumer benefit vs cache budget",
      "§VII future work; unlimited caching is the paper's implicit default");
  report.set_param("item_size_mb", 10);

  const CachePoint points[] = {
      {"unlimited (paper)", 0, core::ChunkEvictionPolicy::kLru},
      {"4 MB, LRU", 4u << 20, core::ChunkEvictionPolicy::kLru},
      {"4 MB, LFU", 4u << 20, core::ChunkEvictionPolicy::kLfu},
      {"1 MB, LRU", 1u << 20, core::ChunkEvictionPolicy::kLru},
      {"1 MB, LFU", 1u << 20, core::ChunkEvictionPolicy::kLfu},
  };

  report.begin_table("main", {"cache", "recall", "2nd consumer latency (s)",
                              "total overhead (MB)"});
  for (const CachePoint& point : points) {
    util::SampleSet recall;
    util::SampleSet second_latency;
    util::SampleSet overhead;
    for (int r = 0; r < bench::runs(); ++r) {
      wl::RetrievalGridParams p;
      p.item_size_bytes = 10u << 20;
      p.consumers = 2;
      p.sequential = true;
      p.pds.chunk_cache_bytes = point.budget_bytes;
      p.pds.chunk_eviction_policy = point.policy;
      p.seed = static_cast<std::uint64_t>(r + 1);
      const wl::RetrievalOutcome out = wl::run_retrieval_grid(p);
      recall.add(out.recall);
      if (out.per_consumer_latency_s.size() >= 2) {
        second_latency.add(out.per_consumer_latency_s[1]);
      }
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("cache", point.name)
        .metric("recall", recall, 3)
        .metric("second_latency_s", second_latency, 1)
        .metric("overhead_mb", overhead, 1);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
