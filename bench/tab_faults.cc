// Fault-tolerance table (DESIGN.md §11): recall / latency / overhead of
// sequential PDD (the Fig. 7 workload) and sequential PDR (the Fig. 15
// workload) under scripted fault classes — crash+restart, churn,
// partition+heal, Gilbert–Elliott burst loss and send-buffer storms — next
// to a clean baseline. The paper does not report faulted runs; the gates
// assert the protocols' qualitative promise instead: every fault class
// recovers to >= 0.9 recall with zero hung sessions, and the clean baseline
// stays at full recall.
#include <string>

#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

// Both legs run on a 7x7 grid, row-major ids. Consumers are the grid center
// plus random picks from the center 5x5 subgrid (rows/cols 1..5), so every
// fault targets border nodes only: producers and relays, never a consumer —
// a departed consumer has no recall to recover.
constexpr std::uint32_t kNx = 7;

NodeId at(std::uint32_t row, std::uint32_t col) {
  return NodeId(row * kNx + col);
}

sim::FaultSchedule make_schedule(const std::string& cls, double fault_s,
                                 double recover_s) {
  sim::FaultSchedule s;
  const SimTime fault = SimTime::seconds(fault_s);
  const SimTime recover = SimTime::seconds(recover_s);
  if (cls == "crash") {
    // Two producers lose their storage outright, one keeps it; all reboot.
    s.crash(fault, at(0, 0), /*wipe=*/true)
        .crash(fault + SimTime::seconds(0.5), at(0, 3), /*wipe=*/false)
        .crash(fault + SimTime::seconds(1.0), at(6, 6), /*wipe=*/true)
        .restart(recover, at(0, 0))
        .restart(recover + SimTime::seconds(0.5), at(0, 3))
        .restart(recover + SimTime::seconds(1.0), at(6, 6));
  } else if (cls == "churn") {
    // Devices walk away mid-protocol and come back, state intact.
    s.churn(fault, recover, at(0, 1))
        .churn(fault + SimTime::seconds(1.0), recover + SimTime::seconds(3.0),
               at(6, 2))
        .churn(fault + SimTime::seconds(2.0), recover + SimTime::seconds(6.0),
               at(3, 0));
  } else if (cls == "partition") {
    // The left column is cut off from the rest of the grid, then healed.
    std::vector<NodeId> left;
    std::vector<NodeId> rest;
    for (std::uint32_t row = 0; row < kNx; ++row) {
      for (std::uint32_t col = 0; col < kNx; ++col) {
        (col == 0 ? left : rest).push_back(at(row, col));
      }
    }
    s.partition(fault, recover, left, rest);
  } else if (cls == "burst") {
    // Burst-loss channels on a diagonal band of relays for the first
    // recover_s seconds.
    for (std::uint32_t i = 0; i < kNx; ++i) {
      s.burst(SimTime::zero(), recover, at(i, i));
    }
  } else if (cls == "storm") {
    // Foreign traffic floods the OS send buffers of three relays just as
    // the first consumer's query goes out.
    s.buffer_storm(fault, at(0, 3))
        .buffer_storm(fault, at(3, 0))
        .buffer_storm(fault, at(3, 6));
  }
  return s;  // "baseline": empty
}

struct LegRow {
  util::SampleSet recall;
  util::SampleSet latency_s;
  util::SampleSet overhead_mb;
  util::SampleSet hung;
};

int run() {
  obs::Report report = bench::make_report(
      "faults",
      "Fault tolerance — sequential PDD / PDR under scripted faults",
      "n/a (beyond the paper): recall >= 0.9 after recovery, no hung "
      "sessions");
  report.set_param("grid", "7x7");
  report.set_param("entries", 1500);
  report.set_param("item_mb", 6);

  const int n = bench::runs();
  const std::vector<std::string> classes = {"baseline",  "crash", "churn",
                                            "partition", "burst", "storm"};

  // -- Sequential PDD (Fig. 7 workload) ------------------------------------
  std::vector<LegRow> pdd(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const auto outs = bench::run_indexed(n, [&](int r) {
      wl::PddGridParams p;
      p.nx = kNx;
      p.ny = kNx;
      p.metadata_count = 1500;
      p.redundancy = 2;
      p.consumers = 3;
      p.sequential = true;
      p.seed = static_cast<std::uint64_t>(r + 1);
      p.horizon = SimTime::seconds(240.0);
      // The first consumer's discovery closes after ~1.9 s; t=1.0 s lands
      // the fault mid-round.
      p.faults = make_schedule(classes[c], 1.0, 30.0);
      return wl::run_pdd_grid(p);
    });
    for (const wl::PddOutcome& out : outs) {
      pdd[c].recall.add(out.recall);
      pdd[c].latency_s.add(out.latency_s);
      pdd[c].overhead_mb.add(out.overhead_mb);
      pdd[c].hung.add(out.all_finished ? 0.0 : 1.0);
    }
  }
  report.begin_table(
      "pdd", {"fault class", "recall", "latency (s)", "overhead (MB)",
              "hung"});
  for (std::size_t c = 0; c < classes.size(); ++c) {
    report.point()
        .param("class", classes[c])
        .metric("recall", pdd[c].recall, 3)
        .metric("latency_s", pdd[c].latency_s, 2)
        .metric("overhead_mb", pdd[c].overhead_mb, 2)
        .metric("hung", pdd[c].hung, 2);
  }
  report.print_table();

  // -- Sequential PDR (Fig. 15 workload) -----------------------------------
  // The partition class's first PDR seed is flight-recorded: a healed
  // partition is the run where retransmission backlog and leaky-bucket fill
  // actually move, which is what the flight recorder exists to show.
  bench::StatsCapture capture;
  std::vector<LegRow> pdr(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const auto outs = bench::run_indexed(n, [&](int r) {
      wl::RetrievalGridParams p;
      p.nx = kNx;
      p.ny = kNx;
      p.item_size_bytes = 6u * 1024 * 1024;
      p.redundancy = 2;
      p.consumers = 2;
      p.sequential = true;
      p.seed = static_cast<std::uint64_t>(r + 1);
      p.horizon = SimTime::seconds(360.0);
      // Providers crash mid-phase-2: CDI converges within ~1-2 s, so by
      // t=5 s chunk queries are in flight toward the crashed nodes.
      p.faults = make_schedule(classes[c], 5.0, 45.0);
      if (classes[c] == "partition" && r == 0) {
        p.sampler = capture.sampler();
        p.profiler = capture.profiler();
      }
      return wl::run_retrieval_grid(p);
    });
    for (const wl::RetrievalOutcome& out : outs) {
      pdr[c].recall.add(out.recall);
      pdr[c].latency_s.add(out.latency_s);
      pdr[c].overhead_mb.add(out.overhead_mb);
      pdr[c].hung.add(out.all_complete ? 0.0 : 1.0);
    }
  }
  std::printf("\n");
  report.begin_table(
      "pdr", {"fault class", "recall", "latency (s)", "overhead (MB)",
              "hung"});
  for (std::size_t c = 0; c < classes.size(); ++c) {
    report.point()
        .param("class", classes[c])
        .metric("recall", pdr[c].recall, 3)
        .metric("latency_s", pdr[c].latency_s, 2)
        .metric("overhead_mb", pdr[c].overhead_mb, 2)
        .metric("hung", pdr[c].hung, 2);
  }
  report.print_table();

  report.begin_section("stats");
  const tools::ParsedSeries parsed = capture.analyze();
  obs::Report::Point& stats_point =
      report.point().param("class", std::string("partition"));
  // 7x7 grid: 49 nodes bound concurrent transmissions.
  bench::add_stats_point(stats_point, parsed, 49.0);
  std::printf("\nflight recorder: %zu rows over the partitioned PDR run\n",
              parsed.rows.size());
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
