// Fig. 15 (paper §VI-B.3): PDR with 5 sequential consumers retrieving the
// same 20 MB item. Chunks cached along earlier reverse paths shorten later
// consumers' transfers.
//
// Paper series: recall always 100%; latency falls from 46.1 s (1st consumer)
// to 38.1 s (5th); overhead falls sharply from 54.22 MB to 23.11 MB because
// the average hop count per chunk shrinks as copies spread.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  const int n_runs = bench::runs(2);
  obs::Report report = bench::make_report(
      "fig15_sequential_pdr",
      "Fig. 15 — PDR with sequential consumers (20 MB item)",
      "latency 46.1 -> 38.1 s; overhead 54.22 -> 23.11 MB; recall 100%",
      n_runs);
  report.set_param("item_size_mb", 20);

  const std::size_t consumers = 5;
  std::vector<util::SampleSet> recall(consumers);
  std::vector<util::SampleSet> latency(consumers);
  util::SampleSet overhead;
  // Causal capture rides the first run only (tracing never perturbs
  // outcomes); its span DAG feeds the "causal" section below.
  bench::CausalCapture capture;
  const auto outs = bench::run_indexed(n_runs, [&](int r) {
    wl::RetrievalGridParams p;
    p.tracer = r == 0 ? capture.tracer() : nullptr;
    p.item_size_bytes = 20u * 1024 * 1024;
    p.consumers = consumers;
    p.sequential = true;
    p.horizon = SimTime::seconds(1800);
    p.seed = static_cast<std::uint64_t>(r + 1);
    return wl::run_retrieval_grid(p);
  });
  for (const wl::RetrievalOutcome& out : outs) {
    for (std::size_t i = 0;
         i < consumers && i < out.per_consumer_recall.size(); ++i) {
      recall[i].add(out.per_consumer_recall[i]);
      latency[i].add(out.per_consumer_latency_s[i]);
    }
    overhead.add(out.overhead_mb);
  }

  report.begin_table("consumers", {"consumer", "recall", "latency (s)"});
  for (std::size_t i = 0; i < consumers; ++i) {
    report.point()
        .param("consumer", static_cast<std::int64_t>(i + 1))
        .metric("recall", recall[i], 3)
        .metric("latency_s", latency[i], 1);
  }
  report.print_table();
  std::printf("\ntotal overhead (all 5 retrievals): %.1f MB\n",
              overhead.mean());
  report.begin_section("summary");
  report.point().hidden_metric("overhead_mb", overhead);

  // Causal span-DAG health + critical-path shape (DESIGN.md §14): chunk
  // caching along earlier consumers' reverse paths should show up as short
  // critical paths for later retrievals.
  const tools::CausalReport causal = capture.analyze();
  std::printf("\ncausal critical paths (seed 1):\n");
  report.begin_table("causal",
                     {"dominant edge", "traces", "with path", "orphans",
                      "dropped", "cp hops p50", "cp hops p99",
                      "cp len p50 (ms)", "cp len p99 (ms)"});
  {
    obs::Report::Point& point = report.point();
    bench::add_causal_point(point, causal);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
