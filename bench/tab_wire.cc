// Wire-efficiency sweep (ROADMAP item 5; DESIGN.md §16): bytes on the air
// per discovered entry, classic codec vs the v2 extensions (delta-encoded
// Bloom updates, varint/prefix-compressed CDI entries, chunk-bitmap
// reconciliation), across Fig. 5/6-style metadata densities.
//
// Both legs measure with `metadata_entry_bytes = 0`, so the entry payloads
// are charged at their real encoded size instead of the paper's flat 30-byte
// convention — the flat charge would hide exactly the compression this bench
// exists to measure.
//
// Gate (tools/report_checks.h, experiment "wire"): at the densest point the
// v2 legs' bytes-per-discovered-entry must drop >= 20% below classic with
// recall unchanged; the PDR leg's chunk bitmap must not regress overhead.
#include <cstring>
#include <utility>

#include "bench_common.h"
#include "net/message.h"
#include "net/transport.h"
#include "workload/experiment.h"

namespace pds {
namespace {

// Bytes on the air by frame type, for one run. Decomposes overhead_mb so a
// regression in either leg points at the responsible message class (query
// floods vs response payloads vs ack/repair control traffic).
struct ByteSplit {
  std::uint64_t query = 0;
  std::uint64_t response = 0;
  std::uint64_t control = 0;  // acks + selective-repair requests
  double mb(std::uint64_t v) const { return static_cast<double>(v) / 1e6; }
};

// Scenario hook: attribute every transmitted frame's bytes to its message
// type. Fragments carry the whole message by pointer; unwrap them so a
// fragmented response still counts as response bytes.
std::function<void(wl::Scenario&)> byte_split_hook(ByteSplit& split) {
  return [&split](wl::Scenario& sc) {
    sc.medium().set_tx_observer([&split](NodeId, const sim::Frame& f) {
      const auto* msg = dynamic_cast<const net::Message*>(f.payload.get());
      if (msg == nullptr) {
        if (const auto* frag =
                dynamic_cast<const net::FragmentPayload*>(f.payload.get())) {
          msg = frag->whole.get();
        }
      }
      const auto bytes = static_cast<std::uint64_t>(f.size_bytes);
      if (msg == nullptr) return;
      switch (msg->type) {
        case net::MessageType::kQuery:
          split.query += bytes;
          break;
        case net::MessageType::kResponse:
          split.response += bytes;
          break;
        case net::MessageType::kAck:
        case net::MessageType::kRepair:
          split.control += bytes;
          break;
      }
    });
  };
}

// Wire variants for the PDD sweep. `delta` and `compress` isolate the two
// extensions so a regression in the combined leg is attributable; `v2` is
// the full efficiency stack (delta sync + compressed entries + adaptive
// round spacing + serve cooldown), which is what the report gates compare
// against classic. The cooldown rides with v2 because compression makes it
// necessary: single-frame compressed responses overhear-cache far more
// reliably than classic's fragmented ones, and without suppression every
// cache along the path echoes the in-flight entries back at the consumer.
struct WireVariant {
  const char* name;
  bool delta_bloom;
  bool compress_entries;
  bool efficiency;  // adaptive round spacing + off-the-air serve cooldown
};
constexpr WireVariant kPddVariants[] = {
    {"classic", false, false, false},
    {"delta", true, false, false},
    {"compress", false, true, false},
    {"v2", true, true, true},
};

core::PdsConfig wire_config(bool delta_bloom, bool compress_entries,
                            bool chunk_bitmap, bool efficiency) {
  core::PdsConfig pds;
  pds.wire.metadata_entry_bytes = 0;  // charge real encoded entry sizes
  pds.wire.delta_bloom = delta_bloom;
  pds.wire.compress_entries = compress_entries;
  pds.wire.chunk_bitmap = chunk_bitmap;
  pds.adaptive_round_spacing = efficiency;
  if (efficiency) pds.entry_serve_cooldown = SimTime::seconds(3.0);
  return pds;
}

int run(bool tiny) {
  obs::Report report = bench::make_report(
      "wire",
      "wire efficiency — classic codec vs v2 extensions (10x10 grid)",
      "bytes/entry drops >=20% at the densest point, recall unchanged");
  report.set_param("mode", tiny ? "tiny" : "full");

  const std::size_t grid = tiny ? 7 : 10;
  const std::vector<std::size_t> densities =
      tiny ? std::vector<std::size_t>{1500, 3000}
           : std::vector<std::size_t>{5000, 10000, 20000};

  report.begin_table("main", {"entries", "variant", "recall", "bytes/entry",
                              "overhead (MB)", "query (MB)", "resp (MB)",
                              "rounds", "latency (s)"});
  for (const std::size_t entries : densities) {
    for (const WireVariant& variant : kPddVariants) {
      util::SampleSet recall;
      util::SampleSet bytes_per_entry;
      util::SampleSet overhead;
      util::SampleSet query_mb;
      util::SampleSet response_mb;
      util::SampleSet rounds;
      util::SampleSet latency;
      const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
        ByteSplit split;
        wl::PddGridParams p;
        p.nx = grid;
        p.ny = grid;
        p.metadata_count = entries;
        p.pds = wire_config(variant.delta_bloom, variant.compress_entries,
                            /*chunk_bitmap=*/false, variant.efficiency);
        p.seed = static_cast<std::uint64_t>(r + 1);
        p.scenario_hook = byte_split_hook(split);
        return std::make_pair(wl::run_pdd_grid(p), split);
      });
      for (const auto& [out, split] : outs) {
        recall.add(out.recall);
        overhead.add(out.overhead_mb);
        query_mb.add(split.mb(split.query));
        response_mb.add(split.mb(split.response));
        rounds.add(out.rounds);
        latency.add(out.latency_s);
        const double discovered =
            out.recall * static_cast<double>(entries);
        bytes_per_entry.add(discovered > 0.0
                                ? out.overhead_mb * 1e6 / discovered
                                : 0.0);
      }
      report.point()
          .param("entries", static_cast<std::int64_t>(entries))
          .param("variant", variant.name)
          .metric("recall", recall, 3)
          .metric("bytes_per_entry", bytes_per_entry, 1)
          .metric("overhead_mb", overhead, 2)
          .metric("query_mb", query_mb, 2)
          .metric("response_mb", response_mb, 2)
          .metric("rounds", rounds, 1)
          .metric("latency_s", latency, 2);
    }
  }
  report.print_table();

  // PDR leg: phase-1 CDI advertisements and phase-2 chunk requests carry the
  // chunk-bitmap extension; overhead must not regress vs classic lists.
  report.begin_table("pdr", {"variant", "recall", "overhead (MB)",
                             "latency (s)"});
  for (const bool v2 : {false, true}) {
    util::SampleSet recall;
    util::SampleSet overhead;
    util::SampleSet latency;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      wl::RetrievalGridParams p;
      p.nx = grid;
      p.ny = grid;
      p.item_size_bytes = (tiny ? 2u : 8u) * 1024 * 1024;
      p.redundancy = 3;
      p.pds = wire_config(v2, v2, v2, v2);
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_retrieval_grid(p);
    });
    for (const wl::RetrievalOutcome& out : outs) {
      recall.add(out.recall);
      overhead.add(out.overhead_mb);
      latency.add(out.latency_s);
    }
    report.point()
        .param("variant", v2 ? "v2" : "classic")
        .metric("recall", recall, 3)
        .metric("overhead_mb", overhead, 2)
        .metric("latency_s", latency, 2);
  }
  report.print_table();

  // Adaptive round spacing on top of the v2 wire: novelty-driven backoff
  // must not cost recall (it may trade latency for fewer low-yield rounds).
  report.begin_table("adaptive", {"variant", "recall", "rounds",
                                  "latency (s)", "overhead (MB)"});
  {
    util::SampleSet recall;
    util::SampleSet rounds;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      wl::PddGridParams p;
      p.nx = grid;
      p.ny = grid;
      p.metadata_count = densities.back();
      p.pds = wire_config(true, true, true, true);
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_pdd_grid(p);
    });
    for (const wl::PddOutcome& out : outs) {
      recall.add(out.recall);
      rounds.add(out.rounds);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("variant", "v2+adaptive")
        .metric("recall", recall, 3)
        .metric("rounds", rounds, 1)
        .metric("latency_s", latency, 2)
        .metric("overhead_mb", overhead, 2);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  return pds::run(tiny);
}
