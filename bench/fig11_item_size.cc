// Fig. 11 (paper §VI-B.3): two-phase PDR retrieving items of 1–20 MB
// (256 KB chunks, one copy of each chunk scattered uniformly).
//
// Paper series: 100% recall at every size; latency and overhead grow almost
// linearly from 8.2 s / 4.83 MB at 1 MB to 46.1 s / 54.22 MB at 20 MB;
// overhead is 2–3× the item size because chunks travel several hops.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  obs::Report report = bench::make_report(
      "fig11_item_size", "Fig. 11 — PDR latency & overhead vs data item size",
      "recall 100%; 1 MB: 8.2 s / 4.83 MB ... 20 MB: 46.1 s / 54.22 MB "
      "(overhead 2-3x item size)");

  report.begin_table("main", {"size (MB)", "recall", "latency (s)",
                              "overhead (MB)", "overhead / size"});
  for (const std::size_t mib : {1u, 5u, 10u, 15u, 20u}) {
    util::SampleSet recall;
    util::SampleSet latency;
    util::SampleSet overhead;
    const auto outs = bench::run_indexed(bench::runs(), [&](int r) {
      wl::RetrievalGridParams p;
      p.item_size_bytes = mib * 1024 * 1024;
      p.seed = static_cast<std::uint64_t>(r + 1);
      return wl::run_retrieval_grid(p);
    });
    for (const wl::RetrievalOutcome& out : outs) {
      recall.add(out.recall);
      latency.add(out.latency_s);
      overhead.add(out.overhead_mb);
    }
    report.point()
        .param("size_mb", static_cast<std::int64_t>(mib))
        .metric("recall", recall, 3)
        .metric("latency_s", latency, 1)
        .metric("overhead_mb", overhead, 1)
        .metric("overhead_per_mb",
                overhead.mean() / static_cast<double>(mib), 2);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
