// Fig. 4 (paper §VI-B.1): recall of single-round PDD (with per-hop ack) as
// the grid — and with it the maximum hop count from the center consumer —
// grows from 3×3 (1 hop) to 11×11 (5 hops). The average load is held at 50
// metadata entries per node.
//
// Paper series: recall falls from 100% at 1 hop to 72.3% at 5 hops; latency
// and overhead grow from 0.3 s / 0.04 MB to 3.5 s / 1.71 MB.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  bench::print_header(
      "Fig. 4 — single-round PDD vs maximum hop count",
      "recall 100% -> 72.3%, latency 0.3 -> 3.5 s, overhead 0.04 -> 1.71 MB");

  util::Table table({"grid", "max hops", "recall", "latency (s)",
                     "overhead (MB)"});
  for (const std::size_t n : {3u, 5u, 7u, 9u, 11u}) {
    const bench::Series s =
        bench::average(bench::runs(), [&](std::uint64_t seed) {
          wl::PddGridParams p;
          p.nx = p.ny = n;
          p.metadata_count = 50 * n * n;  // constant per-node load
          p.multi_round = false;
          p.ack = true;
          p.seed = seed;
          const wl::PddOutcome out = wl::run_pdd_grid(p);
          return std::tuple{out.recall, out.latency_s, out.overhead_mb};
        });
    table.add_row({std::to_string(n) + "x" + std::to_string(n),
                   std::to_string(n / 2), util::Table::num(s.recall.mean(), 3),
                   util::Table::num(s.latency_s.mean(), 2),
                   util::Table::num(s.overhead_mb.mean(), 2)});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
