// Fig. 4 (paper §VI-B.1): recall of single-round PDD (with per-hop ack) as
// the grid — and with it the maximum hop count from the center consumer —
// grows from 3×3 (1 hop) to 11×11 (5 hops). The average load is held at 50
// metadata entries per node.
//
// Paper series: recall falls from 100% at 1 hop to 72.3% at 5 hops; latency
// and overhead grow from 0.3 s / 0.04 MB to 3.5 s / 1.71 MB.
#include "bench_common.h"
#include "workload/experiment.h"

namespace pds {
namespace {

int run() {
  obs::Report report = bench::make_report(
      "fig04_hopcount", "Fig. 4 — single-round PDD vs maximum hop count",
      "recall 100% -> 72.3%, latency 0.3 -> 3.5 s, overhead 0.04 -> 1.71 MB");
  report.set_param("radio_profile", "contended");

  report.begin_table(
      "main", {"grid", "max hops", "recall", "latency (s)", "overhead (MB)"});
  for (const std::size_t n : {3u, 5u, 7u, 9u, 11u}) {
    const bench::Series s =
        bench::average(bench::runs(), [&](std::uint64_t seed) {
          wl::PddGridParams p;
          p.nx = p.ny = n;
          p.metadata_count = 50 * n * n;  // constant per-node load
          p.multi_round = false;
          p.ack = true;
          p.seed = seed;
          const wl::PddOutcome out = wl::run_pdd_grid(p);
          return std::tuple{out.recall, out.latency_s, out.overhead_mb};
        });
    report.point()
        .param("grid", std::to_string(n) + "x" + std::to_string(n))
        .param("max_hops", static_cast<std::int64_t>(n / 2))
        .metric("recall", s.recall, 3)
        .metric("latency_s", s.latency_s, 2)
        .metric("overhead_mb", s.overhead_mb, 2);
  }
  report.print_table();
  return bench::finish(report);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
