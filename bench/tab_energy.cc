// Energy accounting (paper §VII): "to enable overhearing, the radio must be
// kept on, which may lead to high energy consumption". The paper approximates
// energy by message overhead; this table reports actual radio energy from
// the medium's activity ledger (idle + transmit + receive/overhear airtime)
// for the normal-load discovery and a 10 MB retrieval, with overhearing
// caches on and off.
#include "bench_common.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds {
namespace {

struct EnergyReport {
  double total_j = 0.0;
  double mean_node_j = 0.0;
  double max_node_j = 0.0;
  double idle_only_j = 0.0;  // what a silent network would have cost
  double elapsed_s = 0.0;
};

EnergyReport report(wl::Scenario& sc, SimTime elapsed) {
  EnergyReport rep;
  rep.elapsed_s = elapsed.as_seconds();
  const auto nodes = sc.nodes();
  for (core::PdsNode* n : nodes) {
    const double j = sc.medium().energy_joules(n->id(), elapsed);
    rep.total_j += j;
    rep.max_node_j = std::max(rep.max_node_j, j);
  }
  rep.mean_node_j = rep.total_j / static_cast<double>(nodes.size());
  rep.idle_only_j = sc.medium().config().idle_power_w * elapsed.as_seconds() *
                    static_cast<double>(nodes.size());
  return rep;
}

EnergyReport run_pdd(bool overhearing, std::uint64_t seed) {
  core::PdsConfig pds;
  pds.enable_overhearing_cache = overhearing;
  wl::GridSetup setup;
  setup.pds = pds;
  wl::Grid grid = wl::make_grid(setup, seed);
  Rng rng(seed * 31 + 1);
  auto entries = wl::make_sample_descriptors(5000, wl::SampleSpace{}, rng);
  auto nodes = grid.scenario->nodes();
  wl::distribute_metadata(nodes, entries, 1, rng, {grid.center});
  SimTime finished = SimTime::seconds(60);
  grid.center_node().discover(core::Filter{},
                              [&](const core::DiscoverySession::Result& r) {
                                finished = r.finished_at;
                              });
  grid.scenario->run_until(SimTime::seconds(60));
  return report(*grid.scenario, finished);
}

EnergyReport run_pdr(bool overhearing, std::uint64_t seed) {
  core::PdsConfig pds;
  pds.enable_overhearing_cache = overhearing;
  wl::GridSetup setup;
  setup.radio = sim::clean_radio_profile();
  setup.pds = pds;
  wl::Grid grid = wl::make_grid(setup, seed);
  Rng rng(seed * 37 + 5);
  const auto item =
      wl::make_chunked_item("clip", 10u << 20, pds.chunk_size_bytes);
  auto nodes = grid.scenario->nodes();
  wl::distribute_chunks(nodes, item, 10u << 20, pds.chunk_size_bytes, 1, rng,
                        {grid.center});
  SimTime finished = SimTime::seconds(300);
  grid.center_node().retrieve(item, [&](const core::RetrievalResult& r) {
    finished = r.finished_at;
  });
  grid.scenario->run_until(SimTime::seconds(300));
  return report(*grid.scenario, finished);
}

int run() {
  obs::Report telemetry = bench::make_report(
      "tab_energy", "Energy — radio cost of always-on overhearing (§VII)",
      "the paper defers energy to message overhead; this is the actual "
      "idle/tx/rx ledger (100 nodes)");
  telemetry.set_param("seed", 1);

  telemetry.begin_table(
      "main", {"experiment", "overhearing", "elapsed (s)", "total (J)",
               "mean/node (J)", "max node (J)", "vs pure idle"});
  for (const bool overhearing : {true, false}) {
    const EnergyReport pdd = run_pdd(overhearing, 1);
    telemetry.point()
        .param("experiment", "PDD 5k entries")
        .param("overhearing", overhearing, overhearing ? "on" : "off")
        .metric("elapsed_s", pdd.elapsed_s, 1)
        .metric("total_j", pdd.total_j, 1)
        .metric("mean_node_j", pdd.mean_node_j, 2)
        .metric("max_node_j", pdd.max_node_j, 2)
        .metric("vs_idle", pdd.total_j / pdd.idle_only_j, 3)
        .hidden_metric("idle_only_j", pdd.idle_only_j);
  }
  for (const bool overhearing : {true, false}) {
    const EnergyReport pdr = run_pdr(overhearing, 1);
    telemetry.point()
        .param("experiment", "PDR 10 MB")
        .param("overhearing", overhearing, overhearing ? "on" : "off")
        .metric("elapsed_s", pdr.elapsed_s, 1)
        .metric("total_j", pdr.total_j, 1)
        .metric("mean_node_j", pdr.mean_node_j, 2)
        .metric("max_node_j", pdr.max_node_j, 2)
        .metric("vs_idle", pdr.total_j / pdr.idle_only_j, 3)
        .hidden_metric("idle_only_j", pdr.idle_only_j);
  }
  telemetry.print_table();
  std::printf(
      "\nIdle listening dominates: the overhead of actually moving data is\n"
      "the small factor above pure idle, which is why the paper's §VII\n"
      "points at duty-cycling as the real energy lever.\n");
  return bench::finish(telemetry);
}

}  // namespace
}  // namespace pds

int main() { return pds::run(); }
